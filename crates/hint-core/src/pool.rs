//! Persistent shard-worker pool: one long-lived thread per shard,
//! optionally pinned to a core, each **owning** its shard outright.
//!
//! The scoped executor in [`crate::executor`] spawns one thread per
//! active shard *per batch* — correct, but every batch pays thread
//! creation and teardown, and a shard's sealed arenas are touched by
//! whichever OS thread happened to pick it up. [`ShardPool`] inverts the
//! ownership: [`ShardPool::new`] moves each [`ShardedIndex`] shard into
//! a dedicated worker thread that lives for the pool's lifetime, and
//! batches are *dispatched* to the workers over channels as boxed task
//! closures — zero per-batch spawns, and every shard's arenas are only
//! ever walked (and mutated) by the one thread that owns them, which
//! keeps them hot in that core's cache. With `HINT_SHARD_PIN=1` each
//! worker additionally pins itself to core `worker_index mod cores`
//! (best-effort via `taskset(1)` on Linux — the crate forbids `unsafe`,
//! so the `sched_setaffinity` syscall is reached through the userland
//! tool; a no-op when unavailable or on other platforms).
//!
//! ## Dispatch strategies
//!
//! * **Unbounded sinks** (collect, count, wire encoders): the routed
//!   sub-batches are dispatched to every active shard at once and the
//!   returned forks are merged on the calling thread in ascending shard
//!   order — bit-identical to the sequential
//!   [`ShardedIndex::query_sink`] loop, exactly like the scoped
//!   executor.
//! * **Bounded sinks** ([`crate::FirstK`], [`crate::ExistsSink`];
//!   [`MergeableSink::is_bounded`]): dispatch is *staged* in shard
//!   order, and a query whose sink is already saturated is not sent to
//!   the remaining shards at all — the saturation signal propagates to
//!   idle workers as "no work", instead of each worker scanning for
//!   results the merge would then discard. [`ShardPool::stats`] counts
//!   the suppressed dispatches.
//!
//! Writes route to the owning workers as mutation tasks (each worker
//! mutates only its own shard; per-worker channel FIFO keeps every
//! write ordered before any later batch), `seal` broadcasts a reseal
//! barrier, and [`ShardPool::retune_shard`] rebuilds one shard at the
//! `m` the §3.3 cost model picks for its observed query-extent mix —
//! on the worker that owns it. [`ShardPool::into_index`] shuts the
//! workers down and reassembles the [`ShardedIndex`].

use crate::executor::{cluster_enabled, cluster_plan, worker_cap, Routed};
use crate::interval::{Interval, IntervalId, RangeQuery, Time};
use crate::shard::{EpochPin, EpochSlot, MutableIndex, Shard, ShardedIndex};
use crate::sink::{MergeableSink, QuerySink};
use crate::stats::{ExtentMix, InflightGauge};
use crate::IntervalIndex;
use crossbeam::channel::{unbounded, Sender};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A recoverable worker-pool failure, surfaced as a value instead of
/// crashing the process. A serving layer maps this to an error reply on
/// one request; the pool itself stays up (panicking tasks are caught at
/// the task boundary, so the worker keeps its shard and later requests
/// proceed normally).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// Shard `shard`'s worker did not complete the request: the task
    /// panicked mid-reply, or the worker thread is gone. State touched
    /// by the failing request (sink contents, a half-routed write) is
    /// unspecified; the shard itself remains owned and serviceable.
    WorkerDied {
        /// Index of the failing shard.
        shard: usize,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::WorkerDied { shard } => {
                write!(f, "shard {shard} worker failed to complete the request")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// A unit of work dispatched to a shard worker. The closure runs on the
/// worker thread with exclusive access to the shard it owns.
type Task<I> = Box<dyn FnOnce(&mut Shard<I>) + Send + 'static>;

/// One shard's collected sub-batch results: `(query index, ids)` pairs
/// in sub-batch order.
type CollectedSub = Vec<(u32, Vec<IntervalId>)>;

/// One worker: its task channel and join handle. Dropping the sender
/// ends the worker's receive loop; joining returns the shard.
struct Worker<I> {
    tasks: Option<Sender<Task<I>>>,
    handle: Option<JoinHandle<Shard<I>>>,
}

/// A unit of read work dispatched to a reader replica. The closure runs
/// on the reader thread against the epoch image current at execution
/// time (readers pick epochs up at task boundaries).
type ReadTask<I> = Box<dyn FnOnce(&Shard<I>) + Send + 'static>;

/// One reader replica thread for a shard: its task channel, join
/// handle, and the in-flight gauge least-loaded routing compares.
struct Reader<I> {
    tasks: Option<Sender<ReadTask<I>>>,
    handle: Option<JoinHandle<()>>,
    inflight: Arc<InflightGauge>,
}

/// The type-erased epoch publisher a shard's owning worker runs after
/// each mutation (erasure keeps the `I: Clone` bound confined to the
/// replicated constructors).
type Publisher<I> = Arc<dyn Fn(&Shard<I>) + Send + Sync>;

/// Per-shard replication state: the published epoch slot, the
/// publisher closure, and the reader fleet.
struct ShardReplicas<I> {
    slot: Arc<EpochSlot<I>>,
    publish: Publisher<I>,
    readers: Vec<Reader<I>>,
}

/// Pool-wide replication state; absent when `HINT_READ_REPLICAS` is 1
/// (or unset), which keeps the unreplicated pool bit-for-bit on its
/// original dispatch paths.
struct ReplicaSet<I> {
    per_shard: Vec<ShardReplicas<I>>,
    /// Configured logical replica count (≥ 2 whenever this exists).
    configured: usize,
}

/// Dispatch counters (see [`ShardPool::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Batch dispatches executed (solo queries count as batches of 1).
    pub batches: u64,
    /// `(query, shard)` entries produced by routing.
    pub routed: u64,
    /// Entries actually dispatched to a worker.
    pub dispatched: u64,
    /// Entries suppressed because the query's sink was already
    /// saturated when its shard's turn came (bounded-sink staging).
    pub skipped: u64,
    /// Configured logical read replicas per shard (1 = unreplicated).
    pub replicas: u64,
    /// Dispatched entries sent to dedicated reader replica threads.
    pub replica_dispatched: u64,
    /// Dispatched entries served caller-inline from a published epoch
    /// — the zero-hop first replica every replicated pool has.
    pub epoch_reads: u64,
}

#[derive(Default)]
struct PoolCounters {
    batches: AtomicU64,
    routed: AtomicU64,
    dispatched: AtomicU64,
    skipped: AtomicU64,
    replica_dispatched: AtomicU64,
    epoch_reads: AtomicU64,
}

/// True when `HINT_SHARD_PIN=1`: workers pin themselves to cores.
fn pinning_enabled() -> bool {
    crate::env::var_or("HINT_SHARD_PIN", 0u8, "0 or 1", |&v| v <= 1) == 1
}

/// Best-effort core pinning for the calling thread. The crate forbids
/// `unsafe`, so instead of the `sched_setaffinity` syscall this shells
/// out to `taskset(1)` with the thread's own tid (from
/// `/proc/thread-self`); any failure — no procfs, no taskset, denied —
/// leaves the thread unpinned, which is always correct.
#[cfg(target_os = "linux")]
fn pin_current_thread(worker: usize) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let core = worker % cores;
    let Ok(link) = std::fs::read_link("/proc/thread-self") else {
        return;
    };
    let Some(tid) = link.file_name().and_then(|s| s.to_str()) else {
        return;
    };
    let _ = std::process::Command::new("taskset")
        .args(["-pc", &core.to_string(), tid])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status();
}

#[cfg(not(target_os = "linux"))]
fn pin_current_thread(_worker: usize) {}

/// A persistent worker pool over the shards of a [`ShardedIndex`]: the
/// serving-side executor. See the module docs for the dispatch model.
///
/// The pool exposes the same query surface as the index it was built
/// from ([`IntervalIndex`] plus the typed
/// [`query_batch_merge`](Self::query_batch_merge) fast path) with
/// bit-identical results, and the same write surface when the inner
/// index is [`MutableIndex`].
pub struct ShardPool<I> {
    workers: Vec<Worker<I>>,
    /// Inclusive `[start, end]` domain range of each shard, ascending —
    /// the routing metadata mirrored out of the moved shards.
    bounds: Vec<(Time, Time)>,
    /// Live (deduplicated) interval count, maintained by the write path.
    live: usize,
    counters: PoolCounters,
    /// Tasks that panicked on a worker (caught at the task boundary;
    /// the workers survive them). Shared with the worker threads.
    task_panics: Arc<AtomicU64>,
    /// Pooled per-shard routing buffers, reused across batches so steady
    /// dispatch allocates no plan `Vec`s at all. `try_lock` only: a
    /// concurrent batch that loses the race plans into a fresh local
    /// buffer instead of waiting.
    scratch: Mutex<Vec<Vec<Routed>>>,
    /// Read-replication state; `None` keeps the unreplicated pool on
    /// its original dispatch paths bit-for-bit.
    replicas: Option<ReplicaSet<I>>,
}

impl<I: IntervalIndex + Send + 'static> ShardPool<I> {
    /// Moves every shard of `index` into its own worker thread. With
    /// `HINT_SHARD_PIN=1`, worker `j` pins itself to core `j mod cores`.
    pub fn new(index: ShardedIndex<I>) -> Self {
        let (shards, live) = index.into_parts();
        let pin = pinning_enabled();
        let bounds: Vec<(Time, Time)> = shards.iter().map(|s| (s.start, s.end)).collect();
        let task_panics = Arc::new(AtomicU64::new(0));
        let workers = shards
            .into_iter()
            .enumerate()
            .map(|(j, shard)| Self::spawn_worker(j, shard, pin, Arc::clone(&task_panics)))
            .collect();
        Self {
            workers,
            bounds,
            live,
            counters: PoolCounters::default(),
            task_panics,
            scratch: Mutex::new(Vec::new()),
            replicas: None,
        }
    }

    /// Builds a pool with `replicas` logical read replicas per shard
    /// (see the module docs): each shard gets a published-epoch slot —
    /// the zero-dispatch replica every read path may walk caller-inline
    /// — plus dedicated reader threads, sized as
    /// `replicas.min(worker budget) - 1` so a small host gets the
    /// epoch-direct path instead of oversubscribed readers. `replicas`
    /// of 0 or 1 builds an ordinary unreplicated pool.
    pub fn with_read_replicas(index: ShardedIndex<I>, replicas: usize) -> Self
    where
        I: Clone + Sync,
    {
        let threads = replicas.min(worker_cap()).saturating_sub(1);
        Self::with_reader_threads(index, replicas, threads)
    }

    /// [`with_read_replicas`](Self::with_read_replicas) with the reader
    /// thread count per shard chosen explicitly instead of derived from
    /// the worker budget. Tests use this to force real reader threads
    /// on single-core hosts.
    #[doc(hidden)]
    pub fn with_reader_threads(index: ShardedIndex<I>, replicas: usize, threads: usize) -> Self
    where
        I: Clone + Sync,
    {
        if replicas <= 1 {
            return Self::new(index);
        }
        let (shards, live) = index.into_parts();
        let pin = pinning_enabled();
        let bounds: Vec<(Time, Time)> = shards.iter().map(|s| (s.start, s.end)).collect();
        let task_panics = Arc::new(AtomicU64::new(0));
        let mut workers = Vec::with_capacity(shards.len());
        let mut per_shard = Vec::with_capacity(shards.len());
        for (j, shard) in shards.into_iter().enumerate() {
            let slot = Arc::new(EpochSlot::new(Arc::new(shard.clone())));
            let publish: Publisher<I> = {
                let slot = Arc::clone(&slot);
                Arc::new(move |shard: &Shard<I>| slot.publish(Arc::new(shard.clone())))
            };
            let readers = (0..threads)
                .map(|r| Self::spawn_reader(j, r, Arc::clone(&slot), Arc::clone(&task_panics)))
                .collect();
            workers.push(Self::spawn_worker(j, shard, pin, Arc::clone(&task_panics)));
            per_shard.push(ShardReplicas {
                slot,
                publish,
                readers,
            });
        }
        Self {
            workers,
            bounds,
            live,
            counters: PoolCounters::default(),
            task_panics,
            scratch: Mutex::new(Vec::new()),
            replicas: Some(ReplicaSet {
                per_shard,
                configured: replicas,
            }),
        }
    }

    /// Builds a pool with the replica count the `HINT_READ_REPLICAS`
    /// knob asks for (default 1 = unreplicated) — the constructor the
    /// session / serve stack goes through.
    pub fn from_env(index: ShardedIndex<I>) -> Self
    where
        I: Clone + Sync,
    {
        match crate::env::read_replicas() {
            0 | 1 => Self::new(index),
            n => Self::with_read_replicas(index, n),
        }
    }

    /// Spawns the owning worker thread for shard `j`.
    fn spawn_worker(j: usize, mut shard: Shard<I>, pin: bool, panics: Arc<AtomicU64>) -> Worker<I> {
        let (tx, rx) = unbounded::<Task<I>>();
        let handle = std::thread::Builder::new()
            .name(format!("hint-shard-{j}"))
            .spawn(move || {
                if pin {
                    pin_current_thread(j);
                }
                while let Ok(task) = rx.recv() {
                    // a panicking task must not kill the worker
                    // (its shard would be lost with it): catch at
                    // the task boundary, count, keep serving. The
                    // caller sees the missing reply as a typed
                    // `PoolError::WorkerDied`, never a crash.
                    if catch_unwind(AssertUnwindSafe(|| task(&mut shard))).is_err() {
                        panics.fetch_add(1, Ordering::Relaxed);
                    }
                }
                shard
            })
            .expect("spawn shard worker");
        Worker {
            tasks: Some(tx),
            handle: Some(handle),
        }
    }

    /// Spawns reader replica `r` for shard `j`: each task runs against
    /// the epoch image published when the task starts, so readers pick
    /// new epochs up at task boundaries and old epochs drain by
    /// refcount once their last in-flight walk finishes.
    fn spawn_reader(
        j: usize,
        r: usize,
        slot: Arc<EpochSlot<I>>,
        panics: Arc<AtomicU64>,
    ) -> Reader<I>
    where
        I: Sync,
    {
        let (tx, rx) = unbounded::<ReadTask<I>>();
        let inflight = Arc::new(InflightGauge::default());
        let gauge = Arc::clone(&inflight);
        let handle = std::thread::Builder::new()
            .name(format!("hint-read-{j}-{r}"))
            .spawn(move || {
                while let Ok(task) = rx.recv() {
                    let pinned = slot.pin();
                    if catch_unwind(AssertUnwindSafe(|| task(pinned.shard()))).is_err() {
                        panics.fetch_add(1, Ordering::Relaxed);
                    }
                    gauge.exit();
                }
            })
            .expect("spawn reader replica");
        Reader {
            tasks: Some(tx),
            handle: Some(handle),
            inflight,
        }
    }

    /// Number of dispatched tasks that panicked on a worker. The workers
    /// catch these at the task boundary and keep serving; a nonzero
    /// count means some request got a [`PoolError`] (or, for
    /// fire-and-forget writes, may not have fully applied).
    pub fn task_panics(&self) -> u64 {
        self.task_panics.load(Ordering::Relaxed)
    }

    /// Test hook: dispatches a task that panics on shard `j`'s worker.
    /// The worker must survive it (the shard stays owned and queryable);
    /// only the poisoned task itself is lost.
    #[doc(hidden)]
    pub fn inject_poison(&self, j: usize) -> Result<(), PoolError> {
        self.try_send(j, Box::new(|_| panic!("injected poisoned task")))
    }

    /// Shuts the workers down (draining any queued tasks) and
    /// reassembles the [`ShardedIndex`]. The inverse of
    /// [`ShardPool::new`]; a new pool can be spun up from the result.
    pub fn into_index(mut self) -> ShardedIndex<I> {
        let shards = self.join_workers();
        ShardedIndex::from_parts(shards, self.live)
    }

    /// Number of shards (= worker threads).
    pub fn shard_count(&self) -> usize {
        self.workers.len()
    }

    /// The inclusive domain range `[start, end]` of each shard, in order.
    pub fn shard_bounds(&self) -> &[(Time, Time)] {
        &self.bounds
    }

    /// Inclusive domain bounds `[min, max]` across all shards.
    pub fn domain(&self) -> (Time, Time) {
        (self.bounds[0].0, self.bounds[self.bounds.len() - 1].1)
    }

    /// Number of live intervals.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no intervals are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// A snapshot of the dispatch counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            batches: self.counters.batches.load(Ordering::Relaxed),
            routed: self.counters.routed.load(Ordering::Relaxed),
            dispatched: self.counters.dispatched.load(Ordering::Relaxed),
            skipped: self.counters.skipped.load(Ordering::Relaxed),
            replicas: self.read_replicas() as u64,
            replica_dispatched: self.counters.replica_dispatched.load(Ordering::Relaxed),
            epoch_reads: self.counters.epoch_reads.load(Ordering::Relaxed),
        }
    }

    /// Configured logical read replicas per shard (1 = unreplicated).
    pub fn read_replicas(&self) -> usize {
        self.replicas.as_ref().map_or(1, |rs| rs.configured)
    }

    /// Total dedicated reader threads across all shards (0 when
    /// unreplicated, or when the worker budget routed all replica reads
    /// through the caller-inline epoch path).
    pub fn reader_threads(&self) -> usize {
        self.replicas
            .as_ref()
            .map_or(0, |rs| rs.per_shard.iter().map(|s| s.readers.len()).sum())
    }

    /// Pins the currently published epoch of every shard (ascending
    /// domain order), or `None` when read replication is off. The pin
    /// set is a consistent point-in-time read view: query it with
    /// [`crate::query_epoch_pins`], and the results stay bit-identical
    /// to the pinned state across any number of later writes, seals,
    /// and retunes.
    pub fn pin_epochs(&self) -> Option<Vec<EpochPin<I>>> {
        self.replicas
            .as_ref()
            .map(|rs| rs.per_shard.iter().map(|s| s.slot.pin()).collect())
    }

    /// The epoch publisher for shard `j`'s owner tasks (`None` when
    /// unreplicated). Mutating tasks run it after applying their change
    /// and *before* acking, so a caller that saw the ack also sees the
    /// new epoch.
    fn publisher(&self, j: usize) -> Option<Publisher<I>> {
        self.replicas
            .as_ref()
            .map(|rs| Arc::clone(&rs.per_shard[j].publish))
    }

    /// Sends one task to worker `j`, reporting a dead worker as a typed
    /// error. With panicking tasks caught on the worker, this only fails
    /// if the worker thread itself is gone (shut down, or killed outside
    /// the task boundary).
    fn try_send(&self, j: usize, task: Task<I>) -> Result<(), PoolError> {
        self.workers[j]
            .tasks
            .as_ref()
            .ok_or(PoolError::WorkerDied { shard: j })?
            .send(task)
            .map_err(|_| PoolError::WorkerDied { shard: j })
    }

    /// Sends one task to worker `j`.
    ///
    /// # Panics
    /// Panics if the worker thread died.
    fn send(&self, j: usize, task: Task<I>) {
        self.try_send(j, task).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Sends one read task to reader `r` of shard `j`, bumping its
    /// in-flight gauge (the reader drops it when the task finishes).
    fn try_send_read(&self, j: usize, r: usize, task: ReadTask<I>) -> Result<(), PoolError> {
        let reader = &self.replicas.as_ref().expect("replicated pool").per_shard[j].readers[r];
        reader.inflight.enter();
        reader
            .tasks
            .as_ref()
            .ok_or(PoolError::WorkerDied { shard: j })?
            .send(task)
            .map_err(|_| PoolError::WorkerDied { shard: j })
    }

    /// The least-loaded reader replica of shard `j` by in-flight depth,
    /// or `None` when the shard has no dedicated readers.
    fn pick_reader(shard: &ShardReplicas<I>) -> Option<usize> {
        shard
            .readers
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| r.inflight.load())
            .map(|(r, _)| r)
    }

    /// Drains replies tagged with their shard index from `rx` until the
    /// channel closes, returning them in ascending shard order — or, if
    /// fewer replies arrived than `dispatched` entries (a task panicked
    /// mid-reply), the lowest short shard as a [`PoolError`]. A shard
    /// may appear in `dispatched` once per expected reply: replicated
    /// dispatch splits one shard's sub-batch across several readers.
    fn collect_tagged<T>(
        rx: &crossbeam::channel::Receiver<(usize, T)>,
        dispatched: &[usize],
    ) -> Result<Vec<(usize, T)>, PoolError> {
        let mut done: Vec<(usize, T)> = Vec::with_capacity(dispatched.len());
        while let Ok(pair) = rx.recv() {
            done.push(pair);
        }
        if done.len() < dispatched.len() {
            let mut want: HashMap<usize, isize> = HashMap::new();
            for &j in dispatched {
                *want.entry(j).or_insert(0) += 1;
            }
            for (j, _) in &done {
                *want.entry(*j).or_insert(0) -= 1;
            }
            let shard = want
                .iter()
                .filter(|&(_, &short)| short > 0)
                .map(|(&j, _)| j)
                .min()
                .unwrap_or(0);
            return Err(PoolError::WorkerDied { shard });
        }
        done.sort_unstable_by_key(|&(j, _)| j);
        Ok(done)
    }

    /// Shuts the reader replica fleet down (draining queued read tasks).
    fn shutdown_readers(&mut self) {
        if let Some(rs) = &mut self.replicas {
            for shard in &mut rs.per_shard {
                for r in &mut shard.readers {
                    drop(r.tasks.take());
                }
            }
            for shard in &mut rs.per_shard {
                for r in &mut shard.readers {
                    if let Some(handle) = r.handle.take() {
                        let _ = handle.join();
                    }
                }
            }
        }
    }

    /// Drops every task sender and joins the worker threads, collecting
    /// the shards back. Queued tasks still run before a worker exits.
    fn join_workers(&mut self) -> Vec<Shard<I>> {
        self.shutdown_readers();
        let mut shards = Vec::with_capacity(self.workers.len());
        for w in &mut self.workers {
            drop(w.tasks.take());
        }
        for w in &mut self.workers {
            if let Some(handle) = w.handle.take() {
                match handle.join() {
                    Ok(shard) => shards.push(shard),
                    Err(p) => std::panic::resume_unwind(p),
                }
            }
        }
        self.workers.clear();
        shards
    }

    /// Test hook: kills shard `j`'s owning worker outright (closes its
    /// task channel and joins the thread), so the `try_*` dead-worker
    /// paths can be exercised. The shard is lost with the worker; only
    /// `try_*` calls are safe on the pool afterwards.
    #[doc(hidden)]
    pub fn kill_worker(&mut self, j: usize) {
        drop(self.workers[j].tasks.take());
        if let Some(handle) = self.workers[j].handle.take() {
            let _ = handle.join();
        }
    }

    /// Index of the shard owning domain point `t` (clamped).
    #[inline]
    fn shard_of(&self, t: Time) -> usize {
        self.bounds
            .partition_point(|&(start, _)| start <= t)
            .saturating_sub(1)
    }

    /// The contiguous run of shards a query's range overlaps.
    #[inline]
    pub(crate) fn route(&self, q: RangeQuery) -> (usize, usize) {
        (self.shard_of(q.st), self.shard_of(q.end))
    }

    /// The shard-local sub-query for shard `j` (interior boundaries
    /// clipped to the shard range, the query's own endpoints kept on the
    /// first/last routed shard) — same rule as
    /// [`ShardedIndex::local_query`].
    #[inline]
    pub(crate) fn local_query(&self, j: usize, q: RangeQuery, lo: usize, hi: usize) -> RangeQuery {
        let st = if j == lo { q.st } else { self.bounds[j].0 };
        let end = if j == hi { q.end } else { self.bounds[j].1 };
        RangeQuery { st, end }
    }

    /// Routes a batch into `bufs`, reusing their allocations: one
    /// sub-batch per shard, in batch order. When the clustering pass is
    /// enabled, each sub-batch is then sorted by local query start once
    /// — the plan is built (and ordered) a single time and reused by
    /// every routed shard. Returns whether the plan is clustered.
    fn plan_into(&self, queries: &[RangeQuery], bufs: &mut Vec<Vec<Routed>>) -> bool {
        bufs.resize_with(self.bounds.len(), Vec::new);
        for sub in bufs.iter_mut() {
            sub.clear();
        }
        for (qi, &q) in queries.iter().enumerate() {
            let (lo, hi) = self.route(q);
            for (j, sub) in bufs[lo..=hi].iter_mut().enumerate() {
                let j = lo + j;
                sub.push((qi as u32, self.local_query(j, q, lo, hi), j == lo));
            }
        }
        let presorted = cluster_enabled();
        if presorted {
            cluster_plan(bufs);
        }
        presorted
    }

    /// Evaluates a batch of queries through the worker pool, one
    /// [`MergeableSink`] per query. Bit-identical to solo
    /// [`ShardedIndex::query_sink`] calls at the same index state:
    /// per-shard forks are merged back in ascending shard order on the
    /// calling thread. Bounded sinks are dispatched shard by shard so a
    /// saturated query stops being sent to the remaining shards (see
    /// the module docs).
    ///
    /// # Panics
    /// Panics if `queries` and `sinks` have different lengths, or if a
    /// worker fails (use [`try_query_batch_merge`](Self::try_query_batch_merge)
    /// to handle that as a value).
    pub fn query_batch_merge<S>(&self, queries: &[RangeQuery], sinks: &mut [S])
    where
        S: MergeableSink + Send + 'static,
    {
        self.query_batch_merge_hinted(queries, sinks, None)
    }

    /// Fallible [`query_batch_merge`](Self::query_batch_merge): a worker
    /// failure surfaces as [`PoolError`] instead of a panic. On `Err`,
    /// the contents of `sinks` are unspecified (some forks may have
    /// merged) — callers reply with an error and drop them.
    ///
    /// # Panics
    /// Panics if `queries` and `sinks` have different lengths.
    pub fn try_query_batch_merge<S>(
        &self,
        queries: &[RangeQuery],
        sinks: &mut [S],
    ) -> Result<(), PoolError>
    where
        S: MergeableSink + Send + 'static,
    {
        self.try_query_batch_merge_hinted(queries, sinks, None)
    }

    /// [`query_batch_merge`](Self::query_batch_merge) with optional
    /// per-query result-count predictions (from the session's extent
    /// histograms): hint `hints[i]` pre-sizes every fork of `sinks[i]`
    /// via [`MergeableSink::fork_sized`], so collecting forks never grow
    /// mid-scan. Hints are capacity advice only and never affect
    /// results.
    ///
    /// # Panics
    /// Panics if `queries`, `sinks` (and `hints`, when given) have
    /// different lengths, or if a worker fails.
    pub fn query_batch_merge_hinted<S>(
        &self,
        queries: &[RangeQuery],
        sinks: &mut [S],
        hints: Option<&[usize]>,
    ) where
        S: MergeableSink + Send + 'static,
    {
        self.try_query_batch_merge_hinted(queries, sinks, hints)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible [`query_batch_merge_hinted`](Self::query_batch_merge_hinted):
    /// a worker failure surfaces as [`PoolError`] instead of a panic (on
    /// `Err` the sink contents are unspecified).
    ///
    /// # Panics
    /// Panics if `queries`, `sinks` (and `hints`, when given) have
    /// different lengths.
    pub fn try_query_batch_merge_hinted<S>(
        &self,
        queries: &[RangeQuery],
        sinks: &mut [S],
        hints: Option<&[usize]>,
    ) -> Result<(), PoolError>
    where
        S: MergeableSink + Send + 'static,
    {
        assert_eq!(queries.len(), sinks.len(), "one sink per query");
        if let Some(h) = hints {
            assert_eq!(h.len(), queries.len(), "one hint per query");
        }
        if queries.is_empty() {
            return Ok(());
        }
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        let mut local: Vec<Vec<Routed>> = Vec::new();
        let mut guard = self.scratch.try_lock().ok();
        let bufs: &mut Vec<Vec<Routed>> = match guard.as_deref_mut() {
            Some(g) => g,
            None => &mut local,
        };
        let presorted = self.plan_into(queries, bufs);
        let routed: usize = bufs.iter().map(Vec::len).sum();
        self.counters
            .routed
            .fetch_add(routed as u64, Ordering::Relaxed);
        if sinks.iter().all(|s| s.is_bounded()) {
            self.run_staged(bufs, sinks, hints, presorted)
        } else {
            self.run_fanned(bufs, sinks, hints, presorted)
        }
    }

    /// The fork for batch entry `qi`: histogram-presized when the caller
    /// supplied hints, otherwise the sink's own fallback fork.
    #[inline]
    fn fork_for<S: MergeableSink>(sinks: &[S], hints: Option<&[usize]>, qi: usize) -> S {
        match hints {
            Some(h) => sinks[qi].fork_sized(h[qi]),
            None => sinks[qi].fork(),
        }
    }

    /// Parallel dispatch: every active shard gets its sub-batch at once;
    /// forks are merged back in shard order as the workers finish. One
    /// reply channel serves the whole batch — workers tag replies with
    /// their shard index and the merge loop restores shard order.
    fn run_fanned<S>(
        &self,
        plan: &[Vec<Routed>],
        sinks: &mut [S],
        hints: Option<&[usize]>,
        presorted: bool,
    ) -> Result<(), PoolError>
    where
        S: MergeableSink + Send + 'static,
    {
        if self.replicas.is_some() {
            return self.run_fanned_replicated(plan, sinks, hints, presorted);
        }
        let (tx, rx) = unbounded();
        let mut dispatched = Vec::new();
        for (j, sub) in plan.iter().enumerate() {
            if sub.is_empty() {
                continue;
            }
            let job: Vec<(Routed, S)> = sub
                .iter()
                .map(|&entry| (entry, Self::fork_for(sinks, hints, entry.0 as usize)))
                .collect();
            self.counters
                .dispatched
                .fetch_add(job.len() as u64, Ordering::Relaxed);
            let tx = tx.clone();
            self.try_send(
                j,
                Box::new(move |shard| {
                    let _ = tx.send((j, shard.run_forks(job, presorted)));
                }),
            )?;
            dispatched.push(j);
        }
        drop(tx);
        for (_, results) in Self::collect_tagged(&rx, &dispatched)? {
            for (qi, fork) in results {
                sinks[qi as usize].merge(fork);
            }
        }
        Ok(())
    }

    /// Replicated fan-out: each shard's sub-batch is split into one
    /// contiguous chunk per reader replica plus a final chunk the
    /// calling thread runs itself against the published epoch (chunks
    /// hold disjoint queries, so every query still gets exactly one
    /// fork per routed shard and the ascending-shard merge stays
    /// bit-identical). Readers are filled least-loaded first. With no
    /// dedicated readers — the single-core budget — this degenerates to
    /// the zero-dispatch epoch-direct walk: no channel hops, no worker
    /// wakeups, the owner left free for writes.
    fn run_fanned_replicated<S>(
        &self,
        plan: &[Vec<Routed>],
        sinks: &mut [S],
        hints: Option<&[usize]>,
        presorted: bool,
    ) -> Result<(), PoolError>
    where
        S: MergeableSink + Send + 'static,
    {
        let rs = self.replicas.as_ref().expect("replicated pool");
        let (tx, rx) = unbounded();
        let mut expected: Vec<usize> = Vec::new();
        let mut inline: Vec<(usize, Vec<(Routed, S)>)> = Vec::new();
        for (j, sub) in plan.iter().enumerate() {
            if sub.is_empty() {
                continue;
            }
            self.counters
                .dispatched
                .fetch_add(sub.len() as u64, Ordering::Relaxed);
            let shard = &rs.per_shard[j];
            let chunks = shard.readers.len() + 1;
            let per = sub.len().div_ceil(chunks);
            let pieces: Vec<&[Routed]> = sub.chunks(per).collect();
            let (last, to_readers) = pieces.split_last().expect("nonempty sub-batch");
            let mut order: Vec<usize> = (0..shard.readers.len()).collect();
            order.sort_by_key(|&r| shard.readers[r].inflight.load());
            for (&r, piece) in order.iter().zip(to_readers) {
                let job: Vec<(Routed, S)> = piece
                    .iter()
                    .map(|&entry| (entry, Self::fork_for(sinks, hints, entry.0 as usize)))
                    .collect();
                self.counters
                    .replica_dispatched
                    .fetch_add(job.len() as u64, Ordering::Relaxed);
                let tx = tx.clone();
                self.try_send_read(
                    j,
                    r,
                    Box::new(move |shard| {
                        let _ = tx.send((j, shard.run_forks(job, presorted)));
                    }),
                )?;
                expected.push(j);
            }
            let job: Vec<(Routed, S)> = last
                .iter()
                .map(|&entry| (entry, Self::fork_for(sinks, hints, entry.0 as usize)))
                .collect();
            self.counters
                .epoch_reads
                .fetch_add(job.len() as u64, Ordering::Relaxed);
            inline.push((j, job));
        }
        drop(tx);
        // the caller's chunks run on the published epochs while the
        // readers chew theirs
        let mut done: Vec<(usize, Vec<(u32, S)>)> = Vec::with_capacity(inline.len());
        for (j, job) in inline {
            let pinned = rs.per_shard[j].slot.pin();
            done.push((j, pinned.shard().run_forks(job, presorted)));
        }
        done.extend(Self::collect_tagged(&rx, &expected)?);
        done.sort_unstable_by_key(|&(j, _)| j);
        for (_, results) in done {
            for (qi, fork) in results {
                sinks[qi as usize].merge(fork);
            }
        }
        Ok(())
    }

    /// Staged dispatch for bounded sinks: shards are visited in
    /// ascending order, and entries whose sink is already saturated are
    /// dropped instead of dispatched — the cross-shard early exit solo
    /// queries get from sequential shard visits, kept under batching.
    fn run_staged<S>(
        &self,
        plan: &[Vec<Routed>],
        sinks: &mut [S],
        hints: Option<&[usize]>,
        presorted: bool,
    ) -> Result<(), PoolError>
    where
        S: MergeableSink + Send + 'static,
    {
        let (tx, rx) = unbounded();
        for (j, sub) in plan.iter().enumerate() {
            if sub.is_empty() {
                continue;
            }
            let job: Vec<(Routed, S)> = sub
                .iter()
                .filter(|&&(qi, _, _)| !sinks[qi as usize].is_saturated())
                .map(|&entry| (entry, Self::fork_for(sinks, hints, entry.0 as usize)))
                .collect();
            self.counters
                .skipped
                .fetch_add((sub.len() - job.len()) as u64, Ordering::Relaxed);
            if job.is_empty() {
                continue;
            }
            self.counters
                .dispatched
                .fetch_add(job.len() as u64, Ordering::Relaxed);
            // bounded staging under replication routes each stage to the
            // least-loaded reader replica — concurrent batches from other
            // threads spread across the fleet instead of serializing on
            // the owner — and runs epoch-direct when there are no readers
            if let Some(rs) = &self.replicas {
                let shard = &rs.per_shard[j];
                match Self::pick_reader(shard) {
                    Some(r) => {
                        self.counters
                            .replica_dispatched
                            .fetch_add(job.len() as u64, Ordering::Relaxed);
                        let tx = tx.clone();
                        self.try_send_read(
                            j,
                            r,
                            Box::new(move |shard| {
                                let _ = tx.send(shard.run_forks(job, presorted));
                            }),
                        )?;
                        let forks = rx.recv().map_err(|_| PoolError::WorkerDied { shard: j })?;
                        for (qi, fork) in forks {
                            sinks[qi as usize].merge(fork);
                        }
                    }
                    None => {
                        self.counters
                            .epoch_reads
                            .fetch_add(job.len() as u64, Ordering::Relaxed);
                        let pinned = shard.slot.pin();
                        for (qi, fork) in pinned.shard().run_forks(job, presorted) {
                            sinks[qi as usize].merge(fork);
                        }
                    }
                }
                continue;
            }
            let tx = tx.clone();
            self.try_send(
                j,
                Box::new(move |shard| {
                    let _ = tx.send(shard.run_forks(job, presorted));
                }),
            )?;
            for (qi, fork) in rx.recv().map_err(|_| PoolError::WorkerDied { shard: j })? {
                sinks[qi as usize].merge(fork);
            }
        }
        Ok(())
    }

    /// Evaluates a batch through trait-level `dyn` sinks: workers
    /// collect into thread-local buffers, merged back in shard order via
    /// [`QuerySink::emit_slice`] (saturated sinks stop receiving at the
    /// merge, as in the scoped executor's dyn path).
    fn query_batch_dyn(&self, queries: &[RangeQuery], sinks: &mut [&mut dyn QuerySink]) {
        self.try_query_batch_dyn(queries, sinks)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible `dyn`-sink batch evaluation (see
    /// [`IntervalIndex::query_batch`]): a worker failure surfaces as
    /// [`PoolError`] instead of a panic (on `Err` the sink contents are
    /// unspecified).
    ///
    /// # Panics
    /// Panics if `queries` and `sinks` have different lengths.
    pub fn try_query_batch_dyn(
        &self,
        queries: &[RangeQuery],
        sinks: &mut [&mut dyn QuerySink],
    ) -> Result<(), PoolError> {
        assert_eq!(queries.len(), sinks.len(), "one sink per query");
        if queries.is_empty() {
            return Ok(());
        }
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        let mut local: Vec<Vec<Routed>> = Vec::new();
        let mut guard = self.scratch.try_lock().ok();
        let bufs: &mut Vec<Vec<Routed>> = match guard.as_deref_mut() {
            Some(g) => g,
            None => &mut local,
        };
        let presorted = self.plan_into(queries, bufs);
        // replicated pools walk the published epochs caller-inline (in
        // shard order, so the emit order matches the fanned merge): no
        // channel hops, and the owners stay free for writes
        if let Some(rs) = &self.replicas {
            for (j, sub) in bufs.iter().enumerate() {
                if sub.is_empty() {
                    continue;
                }
                self.counters
                    .routed
                    .fetch_add(sub.len() as u64, Ordering::Relaxed);
                self.counters
                    .dispatched
                    .fetch_add(sub.len() as u64, Ordering::Relaxed);
                self.counters
                    .epoch_reads
                    .fetch_add(sub.len() as u64, Ordering::Relaxed);
                let pinned = rs.per_shard[j].slot.pin();
                for (qi, ids) in pinned.shard().run_collect(sub, presorted) {
                    let sink = &mut *sinks[qi as usize];
                    if !sink.is_saturated() {
                        sink.emit_slice(&ids);
                    }
                }
            }
            return Ok(());
        }
        let (tx, rx) = unbounded();
        let mut dispatched = Vec::new();
        for (j, sub) in bufs.iter().enumerate() {
            if sub.is_empty() {
                continue;
            }
            self.counters
                .routed
                .fetch_add(sub.len() as u64, Ordering::Relaxed);
            self.counters
                .dispatched
                .fetch_add(sub.len() as u64, Ordering::Relaxed);
            let sub = sub.clone();
            let tx = tx.clone();
            self.try_send(
                j,
                Box::new(move |shard| {
                    let _ = tx.send((j, shard.run_collect(&sub, presorted)));
                }),
            )?;
            dispatched.push(j);
        }
        drop(tx);
        let done: Vec<(usize, CollectedSub)> = Self::collect_tagged(&rx, &dispatched)?;
        for (_, results) in done {
            for (qi, ids) in results {
                let sink = &mut *sinks[qi as usize];
                if !sink.is_saturated() {
                    sink.emit_slice(&ids);
                }
            }
        }
        Ok(())
    }

    /// Solo query: the routed shards are dispatched one at a time in
    /// domain order, stopping as soon as the sink saturates — the same
    /// shard-granular early exit as [`ShardedIndex::query_sink`], with
    /// each shard's scan running on the worker that owns it.
    pub fn query_sink_pooled<S: QuerySink + ?Sized>(&self, q: RangeQuery, sink: &mut S) {
        self.try_query_sink_pooled(q, sink)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible [`query_sink_pooled`](Self::query_sink_pooled): a worker
    /// failure surfaces as [`PoolError`] instead of a panic (on `Err`
    /// the sink may hold a prefix of the results).
    pub fn try_query_sink_pooled<S: QuerySink + ?Sized>(
        &self,
        q: RangeQuery,
        sink: &mut S,
    ) -> Result<(), PoolError> {
        let (lo, hi) = self.route(q);
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        self.counters
            .routed
            .fetch_add((hi - lo + 1) as u64, Ordering::Relaxed);
        for j in lo..=hi {
            if sink.is_saturated() {
                self.counters
                    .skipped
                    .fetch_add((hi - j + 1) as u64, Ordering::Relaxed);
                return Ok(());
            }
            self.counters.dispatched.fetch_add(1, Ordering::Relaxed);
            // solo reads on a replicated pool walk the published epoch
            // directly on the calling thread: no channel round trip per
            // shard, and the sink's saturation check runs mid-scan just
            // like the unsharded solo path
            if let Some(rs) = &self.replicas {
                self.counters.epoch_reads.fetch_add(1, Ordering::Relaxed);
                let pinned = rs.per_shard[j].slot.pin();
                pinned
                    .shard()
                    .query_local(self.local_query(j, q, lo, hi), j == lo, sink);
                continue;
            }
            let entry: Routed = (0, self.local_query(j, q, lo, hi), j == lo);
            let (tx, rx) = unbounded();
            self.try_send(
                j,
                Box::new(move |shard| {
                    let _ = tx.send(shard.run_collect(&[entry], false));
                }),
            )?;
            for (_, ids) in rx.recv().map_err(|_| PoolError::WorkerDied { shard: j })? {
                sink.emit_slice(&ids);
            }
        }
        Ok(())
    }

    /// Broadcasts a reseal to every worker and waits for all of them —
    /// a write barrier: every earlier queued write is folded into the
    /// sealed arenas before this returns. Clean shards reseal for free
    /// (the inner indexes' idempotent fast path).
    pub fn seal_all(&self) {
        self.try_seal_all().unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible [`seal_all`](Self::seal_all): a worker failure surfaces
    /// as [`PoolError`] instead of a panic. On `Err`, shards that did
    /// reply are sealed; the failing one may not be.
    pub fn try_seal_all(&self) -> Result<(), PoolError> {
        let (tx, rx) = unbounded();
        let dispatched: Vec<usize> = (0..self.workers.len()).collect();
        for &j in &dispatched {
            let tx = tx.clone();
            let publish = self.publisher(j);
            self.try_send(
                j,
                Box::new(move |shard| {
                    shard.index.seal();
                    // publish before acking: a caller that saw the seal
                    // complete also reads the resealed epoch
                    if let Some(publish) = &publish {
                        publish(shard);
                    }
                    let _ = tx.send((j, ()));
                }),
            )?;
        }
        drop(tx);
        Self::collect_tagged(&rx, &dispatched)?;
        Ok(())
    }

    /// Clones every shard out of its worker and reassembles a
    /// standalone [`ShardedIndex`] — the snapshot path's view of a live
    /// pool. Runs as a task on each owning worker, so per-worker FIFO
    /// makes it a read barrier: every earlier queued write is applied
    /// before its shard is cloned. Cheap for sealed shards: the big id
    /// arenas are `Arc`-shared, not copied.
    pub fn clone_index(&self) -> Result<ShardedIndex<I>, PoolError>
    where
        I: Clone,
    {
        let (tx, rx) = unbounded();
        let dispatched: Vec<usize> = (0..self.workers.len()).collect();
        for &j in &dispatched {
            let tx = tx.clone();
            self.try_send(
                j,
                Box::new(move |shard| {
                    let _ = tx.send((j, shard.clone()));
                }),
            )?;
        }
        drop(tx);
        let shards = Self::collect_tagged(&rx, &dispatched)?
            .into_iter()
            .map(|(_, shard)| shard)
            .collect();
        Ok(ShardedIndex::from_parts(shards, self.live))
    }

    /// Approximate heap footprint: inner indexes plus replica
    /// bookkeeping (computed on the owning workers).
    ///
    /// # Panics
    /// Panics if a worker died — use
    /// [`try_size_bytes_pooled`](Self::try_size_bytes_pooled) to handle
    /// that as a value.
    pub fn size_bytes_pooled(&self) -> usize {
        self.try_size_bytes_pooled()
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`size_bytes_pooled`](Self::size_bytes_pooled): a dead
    /// worker surfaces as [`PoolError::WorkerDied`] instead of a panic,
    /// matching the rest of the `try_*` surface.
    pub fn try_size_bytes_pooled(&self) -> Result<usize, PoolError> {
        let (tx, rx) = unbounded();
        let dispatched: Vec<usize> = (0..self.workers.len()).collect();
        for &j in &dispatched {
            let tx = tx.clone();
            self.try_send(
                j,
                Box::new(move |shard| {
                    let _ = tx.send((
                        j,
                        shard.index.size_bytes()
                            + shard.replicas.len() * std::mem::size_of::<IntervalId>() * 2,
                    ));
                }),
            )?;
        }
        drop(tx);
        Ok(Self::collect_tagged(&rx, &dispatched)?
            .into_iter()
            .map(|(_, n)| n)
            .sum())
    }
}

impl<I: MutableIndex + Send + 'static> ShardPool<I> {
    /// Inserts an interval, routing a mutation task to every shard its
    /// extent overlaps (clipped per shard; replicas registered where the
    /// start lies in an earlier shard). Per-worker FIFO orders the write
    /// before any later dispatched batch.
    ///
    /// # Panics
    /// Panics if the interval falls outside the pooled domain — the same
    /// contract as [`ShardedIndex::insert`].
    pub fn insert(&mut self, s: Interval) {
        self.try_insert(s).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible [`insert`](Self::insert): a dead worker surfaces as
    /// [`PoolError`] instead of a panic. On `Err` the interval may be
    /// stored in a prefix of its overlapping shards (queries routed to
    /// a healthy prefix still behave sanely); the live count is only
    /// bumped on success.
    ///
    /// # Panics
    /// Panics if the interval falls outside the pooled domain — the same
    /// contract as [`ShardedIndex::insert`].
    pub fn try_insert(&mut self, s: Interval) -> Result<(), PoolError> {
        let (min, max) = self.domain();
        assert!(
            s.st >= min && s.end <= max,
            "interval [{}, {}] outside the sharded domain [{min}, {max}]",
            s.st,
            s.end,
        );
        let (lo, hi) = (self.shard_of(s.st), self.shard_of(s.end));
        // unreplicated writes are fire-and-forget (per-worker FIFO
        // orders them before later reads); replicated writes wait for
        // every leg to apply *and publish*, so reads through the epochs
        // keep read-your-writes
        let replicated = self.replicas.is_some();
        let (tx, rx) = unbounded();
        for j in lo..=hi {
            let publish = self.publisher(j);
            let tx = tx.clone();
            self.try_send(
                j,
                Box::new(move |shard| {
                    let clipped = shard.clip(&s);
                    shard.index.insert(clipped);
                    if s.st < shard.start {
                        shard.replicas.insert(s.id);
                    }
                    if let Some(publish) = &publish {
                        publish(shard);
                        let _ = tx.send((j, ()));
                    }
                }),
            )?;
        }
        drop(tx);
        if replicated {
            let dispatched: Vec<usize> = (lo..=hi).collect();
            Self::collect_tagged(&rx, &dispatched)?;
        }
        self.live += 1;
        Ok(())
    }

    /// Deletes an interval from every shard holding a copy, returning
    /// whether it was present. The shard owning the start point
    /// arbitrates presence (synchronously); replica copies are removed
    /// with fire-and-forget tasks that later operations queue behind.
    pub fn delete(&mut self, s: &Interval) -> bool {
        self.try_delete(s).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`delete`](Self::delete): a worker failure surfaces as
    /// [`PoolError`] instead of a panic. On `Err` it is unspecified
    /// whether the delete applied (the owning shard arbitrates, and its
    /// reply is what went missing); the live count is left untouched.
    pub fn try_delete(&mut self, s: &Interval) -> Result<bool, PoolError> {
        let (min, max) = self.domain();
        if s.st < min || s.end > max {
            return Ok(false); // out-of-domain intervals were never inserted
        }
        let (lo, hi) = (self.shard_of(s.st), self.shard_of(s.end));
        let s = *s;
        let (tx, rx) = unbounded();
        let publish_lo = self.publisher(lo);
        self.try_send(
            lo,
            Box::new(move |shard| {
                let clipped = shard.clip(&s);
                let found = shard.index.delete(&clipped);
                if found {
                    shard.replicas.remove(&s.id);
                }
                // publish before replying: the arbitration ack implies
                // the owner's epoch already reflects the delete
                if let Some(publish) = &publish_lo {
                    publish(shard);
                }
                let _ = tx.send(found);
            }),
        )?;
        if !rx.recv().map_err(|_| PoolError::WorkerDied { shard: lo })? {
            return Ok(false);
        }
        let replicated = self.replicas.is_some();
        let (ack, acked) = unbounded();
        for j in lo + 1..=hi {
            let publish = self.publisher(j);
            let ack = ack.clone();
            self.try_send(
                j,
                Box::new(move |shard| {
                    let clipped = shard.clip(&s);
                    if shard.index.delete(&clipped) {
                        shard.replicas.remove(&s.id);
                    }
                    if let Some(publish) = &publish {
                        publish(shard);
                        let _ = ack.send((j, ()));
                    }
                }),
            )?;
        }
        drop(ack);
        if replicated && hi > lo {
            let dispatched: Vec<usize> = (lo + 1..=hi).collect();
            Self::collect_tagged(&acked, &dispatched)?;
        }
        self.live -= 1;
        Ok(true)
    }

    /// Reseals shard `j` at the `m` the cost model picks for the
    /// observed query-extent `mix`, on the worker that owns the shard.
    /// Returns `Some((old_m, new_m))` when the shard was rebuilt at a
    /// different depth; otherwise the shard is plainly resealed and
    /// `None` is returned (not re-tunable, empty, or already at the
    /// model's choice). Results are bit-identical either way.
    pub fn retune_shard(&self, j: usize, mix: ExtentMix) -> Option<(u32, u32)> {
        self.try_retune_shard(j, mix)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`retune_shard`](Self::retune_shard): a worker failure
    /// surfaces as [`PoolError`] instead of a panic (on `Err` the shard
    /// may be resealed but not retuned — results stay exact either way).
    pub fn try_retune_shard(
        &self,
        j: usize,
        mix: ExtentMix,
    ) -> Result<Option<(u32, u32)>, PoolError> {
        let (tx, rx) = unbounded();
        let publish = self.publisher(j);
        self.try_send(
            j,
            Box::new(move |shard| {
                let outcome = shard.index.tuned_m().and_then(|from| {
                    let to = shard.index.retune_m(&mix)?;
                    if to == from {
                        return None;
                    }
                    let rebuilt = shard.index.rebuild_with_m(to)?;
                    shard.index = rebuilt; // arrives sealed
                    Some((from, to))
                });
                if outcome.is_none() {
                    shard.index.seal();
                }
                // readers holding the pre-retune epoch keep walking it
                // (results are bit-identical either way); new batches
                // pick the retuned epoch up here
                if let Some(publish) = &publish {
                    publish(shard);
                }
                let _ = tx.send(outcome);
            }),
        )?;
        rx.recv().map_err(|_| PoolError::WorkerDied { shard: j })
    }

    /// The hierarchy depth each shard currently runs at (`None` for
    /// non-re-tunable inner indexes).
    pub fn shard_ms(&self) -> Vec<Option<u32>> {
        let mut out = Vec::with_capacity(self.workers.len());
        for j in 0..self.workers.len() {
            let (tx, rx) = unbounded();
            self.send(
                j,
                Box::new(move |shard| {
                    let _ = tx.send(shard.index.tuned_m());
                }),
            );
            out.push(
                rx.recv()
                    .unwrap_or_else(|_| panic!("{}", PoolError::WorkerDied { shard: j })),
            );
        }
        out
    }
}

impl<I> Drop for ShardPool<I> {
    fn drop(&mut self) {
        // close every task channel, then join: queued work drains, the
        // threads exit, and the shards are dropped on their own workers.
        // Readers go first so no read task outlives the owners.
        if let Some(rs) = &mut self.replicas {
            for shard in &mut rs.per_shard {
                for r in &mut shard.readers {
                    drop(r.tasks.take());
                }
            }
            for shard in &mut rs.per_shard {
                for r in &mut shard.readers {
                    if let Some(handle) = r.handle.take() {
                        let _ = handle.join();
                    }
                }
            }
        }
        for w in &mut self.workers {
            drop(w.tasks.take());
        }
        for w in &mut self.workers {
            if let Some(handle) = w.handle.take() {
                // a worker that panicked already reported; don't double-
                // panic out of drop
                let _ = handle.join();
            }
        }
    }
}

impl<I: IntervalIndex + Send + 'static> IntervalIndex for ShardPool<I> {
    fn query_sink(&self, q: RangeQuery, sink: &mut dyn QuerySink) {
        self.query_sink_pooled(q, sink)
    }

    fn seal(&mut self) {
        self.seal_all()
    }

    fn query_batch(&self, queries: &[RangeQuery], sinks: &mut [&mut dyn QuerySink]) {
        self.query_batch_dyn(queries, sinks)
    }

    fn size_bytes(&self) -> usize {
        self.size_bytes_pooled()
    }

    fn len(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CountSink, ExistsSink, FirstK};
    use crate::{Domain, HintMSubs, SubsConfig};

    fn data() -> Vec<Interval> {
        (0..2_000)
            .map(|i| {
                let st = (i * 53) % 16_000;
                Interval::new(i, st, (st + (i % 29) * 30).min(16_383))
            })
            .collect()
    }

    fn sharded(k: usize, seal: bool) -> ShardedIndex<HintMSubs> {
        let mut idx = ShardedIndex::build_with(&data(), k, |slice, lo, hi| {
            HintMSubs::build_with_domain(slice, Domain::new(lo, hi, 9), SubsConfig::full())
        });
        if seal {
            IntervalIndex::seal(&mut idx);
        }
        idx
    }

    fn batch() -> Vec<RangeQuery> {
        (0..48u64)
            .map(|i| {
                let st = (i * 331) % 16_000;
                RangeQuery::new(st, (st + 40 + i * 60).min(16_383))
            })
            .collect()
    }

    #[test]
    fn pool_solo_and_batch_match_the_direct_index() {
        for seal in [false, true] {
            for k in [1, 2, 4, 8] {
                let direct = sharded(k, seal);
                let pool = ShardPool::new(direct.clone());
                let queries = batch();
                for &q in &queries {
                    let mut want = Vec::new();
                    direct.query_sink(q, &mut want);
                    let mut got = Vec::new();
                    IntervalIndex::query_sink(&pool, q, &mut got);
                    assert_eq!(got, want, "solo k={k} seal={seal} {q:?}");
                }
                // typed merge path
                let mut merged: Vec<Vec<IntervalId>> = queries.iter().map(|_| Vec::new()).collect();
                pool.query_batch_merge(&queries, &mut merged);
                for (i, &q) in queries.iter().enumerate() {
                    let mut want = Vec::new();
                    direct.query_sink(q, &mut want);
                    assert_eq!(merged[i], want, "merge k={k} seal={seal} {q:?}");
                }
                // dyn path
                let mut bufs: Vec<Vec<IntervalId>> = queries.iter().map(|_| Vec::new()).collect();
                {
                    let mut sinks: Vec<&mut dyn QuerySink> =
                        bufs.iter_mut().map(|b| b as &mut dyn QuerySink).collect();
                    IntervalIndex::query_batch(&pool, &queries, &mut sinks);
                }
                for (i, &q) in queries.iter().enumerate() {
                    let mut want = Vec::new();
                    direct.query_sink(q, &mut want);
                    assert_eq!(bufs[i], want, "dyn k={k} seal={seal} {q:?}");
                }
            }
        }
    }

    #[test]
    fn pool_counts_and_exists_match() {
        let direct = sharded(4, true);
        let pool = ShardPool::new(direct.clone());
        let queries = batch();
        let mut counts = vec![CountSink::new(); queries.len()];
        pool.query_batch_merge(&queries, &mut counts);
        let mut exists = vec![ExistsSink::new(); queries.len()];
        pool.query_batch_merge(&queries, &mut exists);
        for (i, &q) in queries.iter().enumerate() {
            assert_eq!(counts[i].count(), direct.count(q), "count {q:?}");
            assert_eq!(exists[i].found(), direct.exists(q), "exists {q:?}");
        }
    }

    #[test]
    fn pool_first_k_is_bit_identical_and_never_over_emits() {
        let direct = sharded(8, true);
        let pool = ShardPool::new(direct.clone());
        let queries = batch();
        for k in [0, 1, 3, 17] {
            let mut sinks: Vec<FirstK> = queries.iter().map(|_| FirstK::new(k)).collect();
            pool.query_batch_merge(&queries, &mut sinks);
            for (i, &q) in queries.iter().enumerate() {
                let mut solo = FirstK::new(k);
                direct.query_sink(q, &mut solo);
                assert!(sinks[i].len() <= k);
                assert_eq!(sinks[i].ids(), solo.ids(), "k={k} {q:?}");
            }
        }
    }

    #[test]
    fn pool_round_trips_through_into_index() {
        let direct = sharded(4, true);
        let pool = ShardPool::new(direct.clone());
        let mut back = pool.into_index();
        assert_eq!(back.shard_count(), 4);
        assert_eq!(back.len(), direct.len());
        let q = RangeQuery::new(100, 9_000);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        direct.query_sink(q, &mut a);
        back.query_sink(q, &mut b);
        assert_eq!(a, b);
        // respawn a second pool from the returned index
        back.insert(Interval::new(700_000, 5, 9));
        let pool2 = ShardPool::new(back);
        assert_eq!(pool2.len(), direct.len() + 1);
        let mut c = Vec::new();
        IntervalIndex::query_sink(&pool2, RangeQuery::new(5, 9), &mut c);
        assert!(c.contains(&700_000));
    }

    #[test]
    fn pool_writes_match_the_direct_index() {
        let mut direct = sharded(4, true);
        let mut pool = ShardPool::new(direct.clone());
        let bounds = direct.shard_bounds();
        // boundary-crossing insert
        let cross = Interval::new(900_000, bounds[1].1 - 5, bounds[2].0 + 5);
        direct.insert(cross);
        pool.insert(cross);
        // a delete that exists and one that doesn't
        let victim = data()[17];
        assert_eq!(pool.delete(&victim), direct.delete(&victim));
        assert!(!pool.delete(&Interval::new(123_456_789, 1, 2)));
        assert!(!pool.delete(&Interval::new(0, 100_000, 200_000))); // out of domain
        IntervalIndex::seal(&mut direct);
        pool.seal_all();
        assert_eq!(pool.len(), direct.len());
        for &q in &batch() {
            let mut want = Vec::new();
            direct.query_sink(q, &mut want);
            let mut got = Vec::new();
            IntervalIndex::query_sink(&pool, q, &mut got);
            assert_eq!(got, want, "{q:?}");
        }
    }

    #[test]
    fn saturated_first_k_batch_stops_dispatching_to_later_shards() {
        // every query hits the full domain, so it routes to all 4 shards;
        // k=1 saturates at the first shard, and the staged dispatch must
        // not send the remaining 3 sub-queries anywhere
        let pool = ShardPool::new(sharded(4, true));
        let queries: Vec<RangeQuery> = (0..8).map(|_| RangeQuery::new(0, 16_383)).collect();
        let mut sinks: Vec<FirstK> = queries.iter().map(|_| FirstK::new(1)).collect();
        pool.query_batch_merge(&queries, &mut sinks);
        for s in &sinks {
            assert_eq!(s.len(), 1);
        }
        let stats = pool.stats();
        assert_eq!(stats.routed, 8 * 4);
        assert_eq!(stats.dispatched, 8, "only the first shard may be scanned");
        assert_eq!(stats.skipped, 8 * 3, "later shards must be skipped");
    }

    #[test]
    fn mixed_bounded_batch_still_exact() {
        let direct = sharded(4, true);
        let pool = ShardPool::new(direct.clone());
        // exists sinks saturate on first hit; staged dispatch must keep
        // answers exact for queries with no results at all
        let queries = vec![
            RangeQuery::new(0, 16_383),
            RangeQuery::new(16_380, 16_383),
            RangeQuery::new(8_000, 8_001),
        ];
        let mut sinks = vec![ExistsSink::new(); queries.len()];
        pool.query_batch_merge(&queries, &mut sinks);
        for (i, &q) in queries.iter().enumerate() {
            assert_eq!(sinks[i].found(), direct.exists(q), "{q:?}");
        }
    }

    #[test]
    fn poisoned_task_does_not_kill_the_worker() {
        let direct = sharded(4, true);
        let mut pool = ShardPool::new(direct.clone());
        assert_eq!(pool.task_panics(), 0);
        // poison every worker once; the panics are caught at the task
        // boundary, so the workers keep their shards and keep serving
        for j in 0..pool.shard_count() {
            pool.inject_poison(j).unwrap();
        }
        for &q in &batch() {
            let mut want = Vec::new();
            direct.query_sink(q, &mut want);
            let mut got = Vec::new();
            pool.try_query_sink_pooled(q, &mut got).unwrap();
            assert_eq!(got, want, "{q:?}");
        }
        assert_eq!(pool.task_panics(), 4);
        // writes and barriers still work after the poison
        pool.try_insert(Interval::new(800_000, 10, 20)).unwrap();
        pool.try_seal_all().unwrap();
        let mut got = Vec::new();
        pool.try_query_sink_pooled(RangeQuery::new(10, 20), &mut got)
            .unwrap();
        assert!(got.contains(&800_000));
        // and the shards come back out intact
        let back = pool.into_index();
        assert_eq!(back.shard_count(), 4);
        assert_eq!(back.len(), direct.len() + 1);
    }

    #[test]
    fn task_panicking_mid_reply_yields_a_typed_error_not_a_panic() {
        let pool = ShardPool::new(sharded(2, true));
        // a task that panics *before* sending its reply: the fallible
        // paths must report WorkerDied for the right shard
        let (tx, rx) = unbounded::<(usize, ())>();
        pool.try_send(
            1,
            Box::new(move |_| {
                let _ = &tx; // the reply sender dies with the panic
                panic!("injected mid-reply panic");
            }),
        )
        .unwrap();
        drop(rx);
        // the pool is still fully serviceable afterwards
        pool.try_seal_all().unwrap();
        let mut count = CountSink::new();
        pool.try_query_sink_pooled(RangeQuery::new(0, 16_383), &mut count)
            .unwrap();
        assert_eq!(count.count(), pool.len());
        assert_eq!(pool.task_panics(), 1);
    }

    #[test]
    fn clone_index_matches_the_live_pool() {
        let mut pool = ShardPool::new(sharded(4, true));
        pool.insert(Interval::new(650_000, 100, 9_000));
        // clone_index is a read barrier: the queued insert lands first
        let cloned = pool.clone_index().unwrap();
        assert_eq!(cloned.shard_count(), 4);
        assert_eq!(cloned.len(), pool.len());
        for &q in &batch() {
            let mut want = Vec::new();
            IntervalIndex::query_sink(&pool, q, &mut want);
            let mut got = Vec::new();
            cloned.query_sink(q, &mut got);
            assert_eq!(got, want, "{q:?}");
        }
        // the clone is independent: mutating it leaves the pool alone
        let live = pool.len();
        let mut cloned = cloned;
        cloned.insert(Interval::new(650_001, 5, 6));
        assert_eq!(pool.len(), live);
    }

    #[test]
    fn replicated_pool_matches_direct_on_all_read_paths() {
        // (logical replicas, dedicated reader threads): 0 threads is the
        // single-core epoch-direct degenerate; >0 exercises real reader
        // threads even on a single-core host
        for &(n, threads) in &[(2usize, 0usize), (2, 1), (4, 3)] {
            for k in [1, 4] {
                let direct = sharded(k, true);
                let pool = ShardPool::with_reader_threads(direct.clone(), n, threads);
                assert_eq!(pool.read_replicas(), n);
                assert_eq!(pool.reader_threads(), threads * k);
                let queries = batch();
                for &q in &queries {
                    let mut want = Vec::new();
                    direct.query_sink(q, &mut want);
                    let mut got = Vec::new();
                    IntervalIndex::query_sink(&pool, q, &mut got);
                    assert_eq!(got, want, "solo n={n} t={threads} k={k} {q:?}");
                }
                let mut merged: Vec<Vec<IntervalId>> = queries.iter().map(|_| Vec::new()).collect();
                pool.query_batch_merge(&queries, &mut merged);
                let mut firstk: Vec<FirstK> = queries.iter().map(|_| FirstK::new(3)).collect();
                pool.query_batch_merge(&queries, &mut firstk);
                let mut bufs: Vec<Vec<IntervalId>> = queries.iter().map(|_| Vec::new()).collect();
                {
                    let mut sinks: Vec<&mut dyn QuerySink> =
                        bufs.iter_mut().map(|b| b as &mut dyn QuerySink).collect();
                    IntervalIndex::query_batch(&pool, &queries, &mut sinks);
                }
                for (i, &q) in queries.iter().enumerate() {
                    let mut want = Vec::new();
                    direct.query_sink(q, &mut want);
                    assert_eq!(merged[i], want, "merge n={n} t={threads} k={k} {q:?}");
                    assert_eq!(bufs[i], want, "dyn n={n} t={threads} k={k} {q:?}");
                    let mut solo = FirstK::new(3);
                    direct.query_sink(q, &mut solo);
                    assert_eq!(firstk[i].ids(), solo.ids(), "firstk n={n} k={k} {q:?}");
                }
                let stats = pool.stats();
                assert_eq!(stats.replicas, n as u64);
                assert!(
                    stats.epoch_reads > 0,
                    "replicated reads must use the epochs"
                );
                if threads > 0 {
                    assert!(
                        stats.replica_dispatched > 0,
                        "reader threads must see work when present"
                    );
                }
            }
        }
    }

    #[test]
    fn replicated_writes_are_read_your_writes() {
        let mut pool = ShardPool::with_reader_threads(sharded(4, true), 3, 2);
        let bounds = pool.shard_bounds().to_vec();
        // a boundary-crossing insert must be visible to epoch reads the
        // moment insert() returns — no seal, no barrier task
        let cross = Interval::new(910_000, bounds[0].1 - 3, bounds[1].0 + 3);
        pool.insert(cross);
        let mut got = Vec::new();
        IntervalIndex::query_sink(&pool, RangeQuery::new(cross.st, cross.end), &mut got);
        assert!(got.contains(&cross.id), "insert invisible to epoch reads");
        assert!(pool.delete(&cross));
        let mut after = Vec::new();
        IntervalIndex::query_sink(&pool, RangeQuery::new(cross.st, cross.end), &mut after);
        assert!(
            !after.contains(&cross.id),
            "delete invisible to epoch reads"
        );
    }

    #[test]
    fn epoch_pins_drain_bit_identically_across_reseal_and_retune() {
        let before = sharded(4, true);
        let mut pool = ShardPool::with_reader_threads(before.clone(), 2, 1);
        let pins = pool.pin_epochs().expect("replicated pool has epochs");
        assert_eq!(pins.len(), 4);
        let epoch0: Vec<u64> = pins.iter().map(|p| p.epoch()).collect();
        // mutate + reseal + retune: the pinned epochs must not move
        pool.insert(Interval::new(920_000, 40, 12_000));
        pool.seal_all();
        pool.retune_shard(2, ExtentMix::from_extents(&[0; 64]));
        let fresh = pool.pin_epochs().unwrap();
        assert!(
            fresh.iter().zip(&epoch0).any(|(f, &e)| f.epoch() > e),
            "mutations must publish new epochs"
        );
        for &q in &batch() {
            // the held pins answer from the pre-mutation image ...
            let mut old = Vec::new();
            crate::shard::query_epoch_pins(&pins, q, &mut old);
            let mut want_old = Vec::new();
            before.query_sink(q, &mut want_old);
            assert_eq!(old, want_old, "drained epoch diverged on {q:?}");
            // ... while live reads see the post-mutation state
            let mut live = Vec::new();
            IntervalIndex::query_sink(&pool, q, &mut live);
            let mut sorted_live = live.clone();
            sorted_live.sort_unstable();
            let hit = q.st <= 12_000 && q.end >= 40;
            assert_eq!(
                sorted_live.binary_search(&920_000).is_ok(),
                hit,
                "live read missed the insert on {q:?}"
            );
        }
        // bounded reads through pins saturate early like any solo query
        let mut k1 = FirstK::new(1);
        crate::shard::query_epoch_pins(&pins, RangeQuery::new(0, 16_383), &mut k1);
        let mut solo = FirstK::new(1);
        before.query_sink(RangeQuery::new(0, 16_383), &mut solo);
        assert_eq!(k1.ids(), solo.ids());
    }

    #[test]
    fn saturated_staging_stats_hold_under_replication() {
        // the bounded-sink dispatch contract is unchanged by replication:
        // k=1 saturates at the first shard and later shards are skipped
        let pool = ShardPool::with_reader_threads(sharded(4, true), 2, 1);
        let queries: Vec<RangeQuery> = (0..8).map(|_| RangeQuery::new(0, 16_383)).collect();
        let mut sinks: Vec<FirstK> = queries.iter().map(|_| FirstK::new(1)).collect();
        pool.query_batch_merge(&queries, &mut sinks);
        for s in &sinks {
            assert_eq!(s.len(), 1);
        }
        let stats = pool.stats();
        assert_eq!(stats.routed, 8 * 4);
        assert_eq!(stats.dispatched, 8, "only the first shard may be scanned");
        assert_eq!(stats.skipped, 8 * 3, "later shards must be skipped");
        assert_eq!(stats.replica_dispatched + stats.epoch_reads, 8);
    }

    #[test]
    fn try_size_bytes_reports_a_dead_worker_instead_of_panicking() {
        let mut pool = ShardPool::new(sharded(4, true));
        let healthy = pool.try_size_bytes_pooled().unwrap();
        assert!(healthy > 0);
        pool.kill_worker(1);
        assert_eq!(
            pool.try_size_bytes_pooled(),
            Err(PoolError::WorkerDied { shard: 1 })
        );
        // the panicking spelling still panics — but as the typed message
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| pool.size_bytes_pooled()))
            .expect_err("dead worker must fail size_bytes_pooled");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("shard 1"), "got: {msg}");
    }

    #[test]
    fn retune_preserves_results_and_reports_the_move() {
        let direct = sharded(4, true);
        let pool = ShardPool::new(direct.clone());
        // a stab-heavy mix on short-interval data wants a deep hierarchy
        let mix = ExtentMix::from_extents(&[0; 64]);
        let moved = pool.retune_shard(1, mix);
        if let Some((from, to)) = moved {
            assert_ne!(from, to);
        }
        for &q in &batch() {
            let mut want = Vec::new();
            direct.query_sink(q, &mut want);
            let mut got = Vec::new();
            IntervalIndex::query_sink(&pool, q, &mut got);
            let (mut wq, mut gq) = (want.clone(), got.clone());
            wq.sort_unstable();
            gq.sort_unstable();
            assert_eq!(gq, wq, "retuned shard diverged on {q:?}");
        }
    }
}
