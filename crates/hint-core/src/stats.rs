//! Query-execution statistics used to validate the paper's analytical
//! claims (§3.2.3, §5.2.4 / Table 7): the number of partitions for which
//! endpoint comparisons were conducted is expected to be at most ~4 per
//! query (Lemma 4), independent of query extent and position.

/// Counters collected by the instrumented query path of
/// [`crate::Hint::query_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Partitions visited (relevant, non-empty).
    pub partitions_accessed: usize,
    /// Partitions in which at least one endpoint comparison was performed.
    pub partitions_compared: usize,
    /// Total endpoint comparisons performed (binary-search probes count
    /// as `log2` of the run length, rounded up).
    pub comparisons: usize,
    /// Results reported.
    pub results: usize,
}

impl QueryStats {
    /// Merges another stats record into this one (for workload averages).
    pub fn merge(&mut self, other: &QueryStats) {
        self.partitions_accessed += other.partitions_accessed;
        self.partitions_compared += other.partitions_compared;
        self.comparisons += other.comparisons;
        self.results += other.results;
    }
}

/// Running aggregate over a query workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkloadStats {
    /// Sum of per-query stats.
    pub total: QueryStats,
    /// Number of queries aggregated.
    pub queries: usize,
}

impl WorkloadStats {
    /// Adds one query's stats.
    pub fn push(&mut self, s: QueryStats) {
        self.total.merge(&s);
        self.queries += 1;
    }

    /// Average number of partitions compared per query — the paper's
    /// "avg. comp. part." row of Table 7.
    pub fn avg_partitions_compared(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.total.partitions_compared as f64 / self.queries as f64
        }
    }

    /// Average comparisons per query.
    pub fn avg_comparisons(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.total.comparisons as f64 / self.queries as f64
        }
    }

    /// Average results per query.
    pub fn avg_results(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.total.results as f64 / self.queries as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_averages() {
        let mut w = WorkloadStats::default();
        w.push(QueryStats {
            partitions_accessed: 10,
            partitions_compared: 4,
            comparisons: 20,
            results: 100,
        });
        w.push(QueryStats {
            partitions_accessed: 6,
            partitions_compared: 2,
            comparisons: 10,
            results: 50,
        });
        assert_eq!(w.queries, 2);
        assert!((w.avg_partitions_compared() - 3.0).abs() < 1e-12);
        assert!((w.avg_comparisons() - 15.0).abs() < 1e-12);
        assert!((w.avg_results() - 75.0).abs() < 1e-12);
    }

    #[test]
    fn empty_workload_is_zero() {
        let w = WorkloadStats::default();
        assert_eq!(w.avg_partitions_compared(), 0.0);
        assert_eq!(w.avg_comparisons(), 0.0);
        assert_eq!(w.avg_results(), 0.0);
    }
}
