//! Query-execution statistics used to validate the paper's analytical
//! claims (§3.2.3, §5.2.4 / Table 7): the number of partitions for which
//! endpoint comparisons were conducted is expected to be at most ~4 per
//! query (Lemma 4), independent of query extent and position.
//!
//! The module also carries the serve-time workload observations behind
//! adaptive per-shard `m` tuning: an [`ExtentHistogram`] accumulates the
//! query extents a shard actually receives (lock-free, so the query path
//! records through `&self`), and its [`ExtentMix`] snapshot feeds the
//! §3.3 cost model ([`crate::cost_model::retuned_m`]) when a dirty shard
//! is resealed.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 extent buckets: bucket 0 holds stabbing queries
/// (extent 0), bucket `i >= 1` holds extents with bit length `i`, i.e.
/// `extent in [2^(i-1), 2^i)`. 64-bit extents need at most bit length
/// 64, hence 65 buckets.
pub const EXTENT_BUCKETS: usize = 65;

/// Bucket index of a query extent (`q.end - q.st`).
#[inline]
fn bucket_of(extent: u64) -> usize {
    (64 - extent.leading_zeros()) as usize
}

/// A lock-free log2 histogram of observed query extents.
///
/// Recording is `&self` (relaxed atomic increments), so the serving
/// query path can accumulate observations without taking locks or
/// requiring `&mut` access; [`snapshot`](Self::snapshot) yields a plain
/// [`ExtentMix`] for the cost model.
#[derive(Debug)]
pub struct ExtentHistogram {
    buckets: [AtomicU64; EXTENT_BUCKETS],
    /// Per-bucket sum of observed result counts (see
    /// [`record_results`](Self::record_results)).
    result_sums: [AtomicU64; EXTENT_BUCKETS],
    /// Per-bucket number of result-count observations. Kept separate
    /// from `buckets`: extents are recorded pre-query on every routed
    /// shard, result counts only where the merged total is known.
    result_obs: [AtomicU64; EXTENT_BUCKETS],
}

impl Default for ExtentHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            result_sums: std::array::from_fn(|_| AtomicU64::new(0)),
            result_obs: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl ExtentHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observed query extent.
    #[inline]
    pub fn record(&self, extent: u64) {
        self.buckets[bucket_of(extent)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records the merged result count of a completed query, keyed by
    /// its extent — the feedback loop behind
    /// [`expected_results`](Self::expected_results).
    #[inline]
    pub fn record_results(&self, extent: u64, results: usize) {
        let b = bucket_of(extent);
        self.result_sums[b].fetch_add(results as u64, Ordering::Relaxed);
        self.result_obs[b].fetch_add(1, Ordering::Relaxed);
    }

    /// Predicted result count for a query of the given extent: the mean
    /// of past [`record_results`](Self::record_results) observations in
    /// the extent's bucket, or `None` before any have landed. Capacity
    /// advice only — never affects results.
    pub fn expected_results(&self, extent: u64) -> Option<usize> {
        let b = bucket_of(extent);
        let obs = self.result_obs[b].load(Ordering::Relaxed);
        if obs == 0 {
            return None;
        }
        let sum = self.result_sums[b].load(Ordering::Relaxed);
        Some((sum / obs) as usize)
    }

    /// A point-in-time copy of the counts.
    pub fn snapshot(&self) -> ExtentMix {
        let mut counts = [0u64; EXTENT_BUCKETS];
        for (c, b) in counts.iter_mut().zip(&self.buckets) {
            *c = b.load(Ordering::Relaxed);
        }
        ExtentMix { counts }
    }

    /// Total extents recorded so far.
    pub fn observations(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }
}

/// A plain (copyable) snapshot of an [`ExtentHistogram`] — the observed
/// query-extent mix the cost model re-tunes `m` against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtentMix {
    /// Per-bucket observation counts (see [`EXTENT_BUCKETS`]).
    pub counts: [u64; EXTENT_BUCKETS],
}

impl Default for ExtentMix {
    fn default() -> Self {
        Self {
            counts: [0; EXTENT_BUCKETS],
        }
    }
}

impl ExtentMix {
    /// An empty mix.
    pub fn new() -> Self {
        Self::default()
    }

    /// A mix built from raw extents (convenience for tests/benches).
    pub fn from_extents(extents: &[u64]) -> Self {
        let mut counts = [0u64; EXTENT_BUCKETS];
        for &e in extents {
            counts[bucket_of(e)] += 1;
        }
        Self { counts }
    }

    /// Total observations in the mix.
    pub fn observations(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Representative extent of bucket `i`: 0 for the stabbing bucket,
    /// else the midpoint of the bucket's `[2^(i-1), 2^i)` range.
    pub fn representative(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            // 1.5 * 2^(i-1), saturating for the top buckets
            (1u64 << (i - 1)).saturating_add(1u64 << (i - 1) >> 1)
        }
    }

    /// Mean observed extent (0 when empty).
    pub fn mean_extent(&self) -> f64 {
        let total = self.observations();
        if total == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, &c)| c as f64 * Self::representative(i) as f64)
            .sum();
        sum / total as f64
    }
}

/// Counters collected by the instrumented query path of
/// [`crate::Hint::query_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Partitions visited (relevant, non-empty).
    pub partitions_accessed: usize,
    /// Partitions in which at least one endpoint comparison was performed.
    pub partitions_compared: usize,
    /// Total endpoint comparisons performed (binary-search probes count
    /// as `log2` of the run length, rounded up).
    pub comparisons: usize,
    /// Results reported.
    pub results: usize,
}

impl QueryStats {
    /// Merges another stats record into this one (for workload averages).
    pub fn merge(&mut self, other: &QueryStats) {
        self.partitions_accessed += other.partitions_accessed;
        self.partitions_compared += other.partitions_compared;
        self.comparisons += other.comparisons;
        self.results += other.results;
    }
}

/// Running aggregate over a query workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkloadStats {
    /// Sum of per-query stats.
    pub total: QueryStats,
    /// Number of queries aggregated.
    pub queries: usize,
}

impl WorkloadStats {
    /// Adds one query's stats.
    pub fn push(&mut self, s: QueryStats) {
        self.total.merge(&s);
        self.queries += 1;
    }

    /// Average number of partitions compared per query — the paper's
    /// "avg. comp. part." row of Table 7.
    pub fn avg_partitions_compared(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.total.partitions_compared as f64 / self.queries as f64
        }
    }

    /// Average comparisons per query.
    pub fn avg_comparisons(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.total.comparisons as f64 / self.queries as f64
        }
    }

    /// Average results per query.
    pub fn avg_results(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.total.results as f64 / self.queries as f64
        }
    }
}

/// A lock-free in-flight depth gauge. Replica routing compares these
/// across a shard's reader fleet to pick the least-loaded replica;
/// `enter`/`exit` bracket one unit of dispatched work.
#[derive(Debug, Default)]
pub struct InflightGauge(AtomicU64);

impl InflightGauge {
    /// Marks one unit of work entering; returns the depth including it.
    pub fn enter(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Marks one unit of work leaving (saturating at zero).
    pub fn exit(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Current in-flight depth.
    pub fn load(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_averages() {
        let mut w = WorkloadStats::default();
        w.push(QueryStats {
            partitions_accessed: 10,
            partitions_compared: 4,
            comparisons: 20,
            results: 100,
        });
        w.push(QueryStats {
            partitions_accessed: 6,
            partitions_compared: 2,
            comparisons: 10,
            results: 50,
        });
        assert_eq!(w.queries, 2);
        assert!((w.avg_partitions_compared() - 3.0).abs() < 1e-12);
        assert!((w.avg_comparisons() - 15.0).abs() < 1e-12);
        assert!((w.avg_results() - 75.0).abs() < 1e-12);
    }

    #[test]
    fn empty_workload_is_zero() {
        let w = WorkloadStats::default();
        assert_eq!(w.avg_partitions_compared(), 0.0);
        assert_eq!(w.avg_comparisons(), 0.0);
        assert_eq!(w.avg_results(), 0.0);
    }

    #[test]
    fn extent_buckets_are_log2_ranges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_snapshot_round_trips() {
        let h = ExtentHistogram::new();
        for e in [0u64, 0, 1, 5, 5, 900] {
            h.record(e);
        }
        assert_eq!(h.observations(), 6);
        let mix = h.snapshot();
        assert_eq!(mix, ExtentMix::from_extents(&[0, 0, 1, 5, 5, 900]));
        assert_eq!(mix.counts[0], 2); // two stabs
        assert_eq!(mix.counts[1], 1); // extent 1
        assert_eq!(mix.counts[3], 2); // extent 5 in [4, 8)
        assert_eq!(mix.counts[10], 1); // extent 900 in [512, 1024)
    }

    #[test]
    fn expected_results_average_per_extent_bucket() {
        let h = ExtentHistogram::new();
        assert_eq!(h.expected_results(5), None);
        h.record_results(5, 100);
        h.record_results(6, 50); // same [4, 8) bucket
        assert_eq!(h.expected_results(7), Some(75));
        // Other buckets stay independent and unobserved.
        assert_eq!(h.expected_results(0), None);
        assert_eq!(h.expected_results(900), None);
        h.record_results(0, 3);
        assert_eq!(h.expected_results(0), Some(3));
    }

    #[test]
    fn representatives_sit_inside_their_bucket() {
        assert_eq!(ExtentMix::representative(0), 0);
        assert_eq!(ExtentMix::representative(1), 1);
        for i in 2..64 {
            let rep = ExtentMix::representative(i);
            assert!(rep >= 1 << (i - 1) && rep < 1 << i, "bucket {i}: {rep}");
        }
    }

    #[test]
    fn mean_extent_weights_buckets() {
        let mix = ExtentMix::from_extents(&[0, 0]);
        assert_eq!(mix.mean_extent(), 0.0);
        let mix = ExtentMix::from_extents(&[1, 1]);
        assert_eq!(mix.mean_extent(), 1.0);
        assert_eq!(ExtentMix::new().mean_extent(), 0.0);
    }
}
