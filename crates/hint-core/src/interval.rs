//! The interval data model used throughout the workspace.
//!
//! Following the paper (§1), every object is a triple
//! `⟨s.id, s.st, s.end⟩` where `[s.st, s.end]` is a *closed* interval over a
//! discrete (integer) domain. A range query `q = [q.st, q.end]` retrieves the
//! ids of all intervals that overlap `q`, i.e. all `s` with
//! `s.st ≤ q.end ∧ q.st ≤ s.end`.

/// Identifier of an interval record.
///
/// Ids are opaque to the index; they can be used by the caller to fetch the
/// remaining attributes of the object from a companion table.
pub type IntervalId = u64;

/// A point on the (discrete) time/domain axis.
pub type Time = u64;

/// Sentinel id marking a logically deleted record (a *tombstone*, §3.4).
///
/// Deleted entries keep their slot inside index partitions but are skipped
/// during result reporting, exactly like the paper's tombstone scheme.
pub const TOMBSTONE: IntervalId = IntervalId::MAX;

/// An interval record: id plus a closed interval `[st, end]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Identifier of the object this interval belongs to.
    pub id: IntervalId,
    /// Start point (inclusive).
    pub st: Time,
    /// End point (inclusive). Invariant: `st <= end`.
    pub end: Time,
}

impl Interval {
    /// Creates a new interval.
    ///
    /// # Panics
    /// Panics if `st > end` (the index relies on the invariant everywhere).
    #[inline]
    pub fn new(id: IntervalId, st: Time, end: Time) -> Self {
        assert!(st <= end, "interval {id}: st ({st}) must be <= end ({end})");
        Self { id, st, end }
    }

    /// Length (duration) of the interval. A point interval has length 0,
    /// matching the paper's "min duration 1 second" convention for closed
    /// second-granularity intervals when measured as `end - st`.
    #[inline]
    pub fn duration(&self) -> Time {
        self.end - self.st
    }

    /// True iff this is a point interval (`st == end`).
    #[inline]
    pub fn is_point(&self) -> bool {
        self.st == self.end
    }

    /// Closed-interval overlap test with a query range (§1):
    /// `s.st ≤ q.end ∧ q.st ≤ s.end`.
    #[inline]
    pub fn overlaps(&self, q: &RangeQuery) -> bool {
        self.st <= q.end && q.st <= self.end
    }

    /// Overlap test against another interval.
    #[inline]
    pub fn overlaps_interval(&self, other: &Interval) -> bool {
        self.st <= other.end && other.st <= self.end
    }

    /// True iff this interval fully contains `[q.st, q.end]`.
    #[inline]
    pub fn covers(&self, q: &RangeQuery) -> bool {
        self.st <= q.st && q.end <= self.end
    }
}

/// A range (interval overlap) query `q = [q.st, q.end]`.
///
/// Stabbing queries (pure-timeslice queries) are the special case
/// `q.st == q.end`; see [`RangeQuery::stab`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RangeQuery {
    /// Query start (inclusive).
    pub st: Time,
    /// Query end (inclusive). Invariant: `st <= end`.
    pub end: Time,
}

impl RangeQuery {
    /// Creates a new range query.
    ///
    /// # Panics
    /// Panics if `st > end`.
    #[inline]
    pub fn new(st: Time, end: Time) -> Self {
        assert!(st <= end, "query: st ({st}) must be <= end ({end})");
        Self { st, end }
    }

    /// Closed query from half-open `[st, end)` bounds — the adaptation the
    /// paper sketches in §1 for open interval ends: on a discrete domain
    /// `[st, end)` equals `[st, end - 1]`.
    ///
    /// Returns `None` when the half-open range is empty (`st >= end`).
    #[inline]
    pub fn from_half_open(st: Time, end: Time) -> Option<Self> {
        (st < end).then(|| Self::new(st, end - 1))
    }

    /// Closed query from fully-open `(st, end)` bounds: equals
    /// `[st + 1, end - 1]` on a discrete domain.
    ///
    /// Returns `None` when the open range contains no domain value.
    #[inline]
    pub fn from_open(st: Time, end: Time) -> Option<Self> {
        (end > st && end - st >= 2).then(|| Self::new(st + 1, end - 1))
    }

    /// Creates a stabbing query at point `t` (`q.st = q.end = t`).
    #[inline]
    pub fn stab(t: Time) -> Self {
        Self { st: t, end: t }
    }

    /// Extent (length) of the query range.
    #[inline]
    pub fn extent(&self) -> Time {
        self.end - self.st
    }

    /// True iff this is a stabbing query.
    #[inline]
    pub fn is_stab(&self) -> bool {
        self.st == self.end
    }
}

impl From<Interval> for RangeQuery {
    fn from(s: Interval) -> Self {
        RangeQuery {
            st: s.st,
            end: s.end,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_is_symmetric_on_closed_ends() {
        let s = Interval::new(1, 5, 9);
        // touching at a single point counts as overlap (closed intervals)
        assert!(s.overlaps(&RangeQuery::new(9, 12)));
        assert!(s.overlaps(&RangeQuery::new(0, 5)));
        assert!(!s.overlaps(&RangeQuery::new(10, 12)));
        assert!(!s.overlaps(&RangeQuery::new(0, 4)));
    }

    #[test]
    fn point_intervals_and_stabs() {
        let s = Interval::new(7, 4, 4);
        assert!(s.is_point());
        assert_eq!(s.duration(), 0);
        assert!(s.overlaps(&RangeQuery::stab(4)));
        assert!(!s.overlaps(&RangeQuery::stab(5)));
        assert!(RangeQuery::stab(4).is_stab());
    }

    #[test]
    fn covers_requires_full_containment() {
        let s = Interval::new(1, 2, 10);
        assert!(s.covers(&RangeQuery::new(2, 10)));
        assert!(s.covers(&RangeQuery::new(5, 5)));
        assert!(!s.covers(&RangeQuery::new(1, 5)));
        assert!(!s.covers(&RangeQuery::new(5, 11)));
    }

    #[test]
    #[should_panic]
    fn inverted_interval_panics() {
        let _ = Interval::new(1, 9, 5);
    }

    #[test]
    #[should_panic]
    fn inverted_query_panics() {
        let _ = RangeQuery::new(9, 5);
    }

    #[test]
    fn interval_to_query_conversion() {
        let s = Interval::new(3, 1, 8);
        let q: RangeQuery = s.into();
        assert_eq!(q, RangeQuery::new(1, 8));
    }

    #[test]
    fn half_open_adaptation() {
        assert_eq!(
            RangeQuery::from_half_open(3, 7),
            Some(RangeQuery::new(3, 6))
        );
        assert_eq!(RangeQuery::from_half_open(3, 4), Some(RangeQuery::stab(3)));
        assert_eq!(RangeQuery::from_half_open(3, 3), None);
        assert_eq!(RangeQuery::from_half_open(4, 3), None);
    }

    #[test]
    fn open_adaptation() {
        assert_eq!(RangeQuery::from_open(3, 7), Some(RangeQuery::new(4, 6)));
        assert_eq!(RangeQuery::from_open(3, 5), Some(RangeQuery::stab(4)));
        assert_eq!(RangeQuery::from_open(3, 4), None);
        assert_eq!(RangeQuery::from_open(3, 3), None);
    }
}
