//! The §3.3 analytical model for choosing `m`.
//!
//! Query cost is modeled as `C = C_p + C_cmp + C_acc` where the partition
//! lookup cost `C_p` is negligible, `C_cmp` is dominated by comparing the
//! two bottom-level boundary partitions (expected `n / 2^m` intervals each,
//! Lemma 3), and `C_acc` is the cost of sequentially touching the remaining
//! `|Q| - 2·n/2^m` comparison-free results. Result cardinality follows the
//! selectivity formula of Pagel et al. \[28\]: `|Q| = n·(λ_s + λ_q)/Λ`.
//!
//! `m_opt` is the smallest `m` whose estimated cost converges (within a
//! configurable tolerance, the paper uses 3%) to the cost of the
//! comparison-free `m = m'` configuration.
//!
//! The module also implements the Theorem-1 space model: the expected
//! replication factor `k` (partitions per interval).

use crate::interval::Interval;
use crate::stats::ExtentMix;
use std::time::Instant;

/// Machine-dependent cost constants: seconds per endpoint comparison and
/// per sequential result access. Estimate with [`measure_betas`] or use
/// [`Betas::DEFAULT`] (a typical 2020s x86-64 ratio).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Betas {
    /// Cost of one endpoint comparison (includes the dependent branch).
    pub cmp: f64,
    /// Cost of sequentially accessing + reporting one result id.
    pub acc: f64,
}

impl Betas {
    /// A reasonable default ratio: a comparison with an unpredictable
    /// branch costs ~4x a sequential id copy.
    pub const DEFAULT: Betas = Betas {
        cmp: 2.0e-9,
        acc: 0.5e-9,
    };
}

/// Workload statistics feeding the model.
#[derive(Debug, Clone, Copy)]
pub struct ModelInput {
    /// Number of intervals `n = |S|`.
    pub n: u64,
    /// Mean interval length `λ_s`.
    pub lambda_s: f64,
    /// Mean query extent `λ_q`.
    pub lambda_q: f64,
    /// Domain span `Λ` (max endpoint − min endpoint).
    pub span: u64,
}

impl ModelInput {
    /// Gathers `n`, `λ_s` and `Λ` from a dataset; `λ_q` is supplied by the
    /// caller (it is a property of the query workload).
    pub fn from_data(data: &[Interval], lambda_q: f64) -> Self {
        assert!(!data.is_empty());
        let mut min = u64::MAX;
        let mut max = 0u64;
        let mut total_len = 0u128;
        for s in data {
            min = min.min(s.st);
            max = max.max(s.end);
            total_len += s.duration() as u128;
        }
        Self {
            n: data.len() as u64,
            lambda_s: total_len as f64 / data.len() as f64,
            lambda_q,
            span: max - min,
        }
    }

    /// Number of bits `m'` of the domain span — the maximum useful `m`.
    pub fn max_m(&self) -> u32 {
        if self.span == 0 {
            0
        } else {
            64 - self.span.leading_zeros()
        }
    }

    /// Expected query result cardinality `|Q| = n·(λ_s + λ_q)/Λ` \[28\].
    pub fn expected_results(&self) -> f64 {
        if self.span == 0 {
            return self.n as f64;
        }
        (self.n as f64 * (self.lambda_s + self.lambda_q) / self.span as f64).min(self.n as f64)
    }
}

/// Estimated evaluation cost (seconds per query) of a HINT^m with the
/// given `m` (§3.3).
pub fn estimated_cost(input: &ModelInput, betas: &Betas, m: u32) -> f64 {
    let per_part = input.n as f64 / (1u64 << m.min(63)) as f64;
    let c_cmp = betas.cmp * 2.0 * per_part;
    let c_acc = betas.acc * (input.expected_results() - 2.0 * per_part).max(0.0);
    c_cmp + c_acc
}

/// The smallest `m` whose estimated cost is within `tolerance` (e.g. 0.03)
/// of the comparison-free configuration `m = m'` (§3.3, Table 7).
pub fn m_opt(input: &ModelInput, betas: &Betas, tolerance: f64) -> u32 {
    let max_m = input.max_m();
    let best = estimated_cost(input, betas, max_m);
    for m in 1..=max_m {
        if estimated_cost(input, betas, m) <= best * (1.0 + tolerance) {
            return m;
        }
    }
    max_m
}

/// Mean estimated cost per query of an `m`-level hierarchy under an
/// *observed* query-extent mix, instead of the single `λ_q` the build-time
/// model assumes: each histogram bucket contributes the §3.3 cost at its
/// representative extent, weighted by how often that extent was seen.
/// `input.lambda_q` is ignored; an empty mix falls back to it.
pub fn mix_cost(input: &ModelInput, betas: &Betas, m: u32, mix: &ExtentMix) -> f64 {
    let total = mix.observations();
    if total == 0 {
        return estimated_cost(input, betas, m);
    }
    let mut acc = 0.0;
    for (i, &count) in mix.counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let at = ModelInput {
            lambda_q: ExtentMix::representative(i) as f64,
            ..*input
        };
        acc += count as f64 * estimated_cost(&at, betas, m);
    }
    acc / total as f64
}

/// Serve-time re-tuning: the `m` a shard should be resealed at, given
/// the query-extent mix it actually observed.
///
/// Like [`m_opt`], the smallest `m` within `tolerance` of the best
/// [`mix_cost`] is chosen (smaller `m` ⇒ less replication, Theorem 1).
/// Because the best over all candidates is never above `current`'s own
/// cost, the choice can never lose to `current` on the observed mix by
/// more than the convergence tolerance:
/// `mix_cost(chosen) <= mix_cost(current) · (1 + tolerance)`. An empty
/// mix returns `current` (nothing observed, nothing to adapt to).
pub fn retuned_m(
    input: &ModelInput,
    betas: &Betas,
    tolerance: f64,
    mix: &ExtentMix,
    current: u32,
) -> u32 {
    if mix.observations() == 0 {
        return current;
    }
    let max_m = input.max_m().max(1);
    let current = current.min(max_m);
    let best = (1..=max_m)
        .map(|m| mix_cost(input, betas, m, mix))
        .fold(f64::INFINITY, f64::min);
    for m in 1..=max_m {
        if mix_cost(input, betas, m, mix) <= best * (1.0 + tolerance) {
            return m;
        }
    }
    current
}

/// Theorem-1 space model: expected replication factor `k` — the number of
/// levels (≈ partitions) each interval is assigned to:
/// `k = log2(2^{log2 λ − m' + m} + 1)`, at least 1.
pub fn replication_factor(input: &ModelInput, m: u32) -> f64 {
    if input.lambda_s <= 0.0 {
        return 1.0;
    }
    let exponent = input.lambda_s.log2() - input.max_m() as f64 + m.min(input.max_m()) as f64;
    (exponent.exp2() + 1.0).log2().max(1.0)
}

/// Measures the machine's `β_cmp` and `β_acc` with short calibration loops
/// (§3.3: "machine-dependent and can easily be estimated by
/// experimentation").
pub fn measure_betas() -> Betas {
    const N: usize = 1 << 20;
    // pseudo-random data defeating branch prediction for the compare loop
    let mut x = 0x9e3779b97f4a7c15u64;
    let data: Vec<u64> = (0..N)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        })
        .collect();

    // β_acc: sequential copy of ids
    let mut out: Vec<u64> = Vec::with_capacity(N);
    let t0 = Instant::now();
    let mut acc_total = 0.0;
    let reps = 8;
    for _ in 0..reps {
        out.clear();
        out.extend_from_slice(&data);
        acc_total += out.iter().rev().take(1).sum::<u64>() as f64 * 0.0;
    }
    let acc = t0.elapsed().as_secs_f64() / (reps * N) as f64 + acc_total;

    // β_cmp: compare + conditional push
    let pivot = u64::MAX / 2;
    let t1 = Instant::now();
    for _ in 0..reps {
        out.clear();
        for &v in &data {
            if v <= pivot {
                out.push(v);
            }
        }
    }
    let cmp = t1.elapsed().as_secs_f64() / (reps * N) as f64;
    Betas {
        cmp: cmp.max(1e-12),
        acc: acc.max(1e-12),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input() -> ModelInput {
        // BOOKS-like shape: n=2.3M, λ_s ≈ 7% of a 31.5M domain
        ModelInput {
            n: 2_300_000,
            lambda_s: 2.2e6,
            lambda_q: 3.15e4,
            span: 31_507_200,
        }
    }

    #[test]
    fn cost_decreases_with_m_and_converges() {
        let inp = input();
        let b = Betas::DEFAULT;
        let mut prev = f64::INFINITY;
        for m in 1..=inp.max_m() {
            let c = estimated_cost(&inp, &b, m);
            assert!(c <= prev + 1e-15, "cost must be non-increasing in m");
            prev = c;
        }
    }

    #[test]
    fn m_opt_is_interior_for_long_interval_workloads() {
        let inp = input();
        let m = m_opt(&inp, &Betas::DEFAULT, 0.03);
        // paper's Table 7 reports m_opt ≈ 9-12 for BOOKS-shaped data
        assert!(m >= 5 && m <= inp.max_m(), "m_opt = {m}");
        assert!(m < inp.max_m(), "long intervals should not need m = m'");
    }

    #[test]
    fn replication_factor_grows_with_m_and_interval_length() {
        let inp = input();
        let k_small = replication_factor(&inp, 5);
        let k_large = replication_factor(&inp, inp.max_m());
        assert!(k_small <= k_large);
        assert!(k_small >= 1.0);

        // short intervals (TAXIS-like) stay near k = 1
        let short = ModelInput {
            n: 10_000_000,
            lambda_s: 758.0,
            lambda_q: 3.2e4,
            span: 31_768_287,
        };
        let k = replication_factor(&short, 16);
        assert!(k < 2.5, "short intervals: k = {k}");
    }

    #[test]
    fn expected_results_clamped_to_n() {
        let inp = ModelInput {
            n: 100,
            lambda_s: 1e9,
            lambda_q: 1e9,
            span: 10,
        };
        assert_eq!(inp.expected_results(), 100.0);
    }

    #[test]
    fn from_data_statistics() {
        let data = vec![
            Interval::new(1, 0, 10),
            Interval::new(2, 5, 25),
            Interval::new(3, 90, 100),
        ];
        let inp = ModelInput::from_data(&data, 4.0);
        assert_eq!(inp.n, 3);
        assert_eq!(inp.span, 100);
        assert!((inp.lambda_s - 40.0 / 3.0).abs() < 1e-9);
        assert_eq!(inp.max_m(), 7);
    }

    #[test]
    fn mix_cost_matches_point_cost_on_a_single_extent() {
        let inp = input();
        let b = Betas::DEFAULT;
        // a mix concentrated on one representative extent equals the
        // point model evaluated at that extent
        let e = ExtentMix::representative(15);
        let mix = ExtentMix::from_extents(&[e, e, e]);
        for m in [4, 8, 12] {
            let at = ModelInput {
                lambda_q: e as f64,
                ..inp
            };
            let got = mix_cost(&inp, &b, m, &mix);
            let want = estimated_cost(&at, &b, m);
            assert!((got - want).abs() < 1e-15, "m={m}: {got} vs {want}");
        }
        // empty mix falls back to the input's own lambda_q
        assert_eq!(
            mix_cost(&inp, &b, 9, &ExtentMix::new()),
            estimated_cost(&inp, &b, 9)
        );
    }

    #[test]
    fn retuned_m_never_loses_to_the_current_m() {
        let inp = input();
        let b = Betas::DEFAULT;
        let tol = 0.03;
        // a spread of adversarial mixes: stab-only, long-only, bimodal,
        // and a broad sweep
        let mixes = [
            ExtentMix::from_extents(&[0; 8]),
            ExtentMix::from_extents(&[1 << 22; 8]),
            ExtentMix::from_extents(&[0, 0, 0, 0, 0, 0, 1 << 24, 1 << 24]),
            ExtentMix::from_extents(&[1, 64, 4_096, 1 << 18, 1 << 22, 1 << 24]),
        ];
        for mix in &mixes {
            for current in 1..=inp.max_m() {
                let m = retuned_m(&inp, &b, tol, mix, current);
                assert!(m >= 1 && m <= inp.max_m());
                // the guarantee: the choice never loses to the m it
                // replaces by more than the convergence tolerance
                assert!(
                    mix_cost(&inp, &b, m, mix)
                        <= mix_cost(&inp, &b, current, mix) * (1.0 + tol) + 1e-18,
                    "retune lost: current={current} chose {m}"
                );
            }
        }
    }

    #[test]
    fn retuned_m_adapts_to_the_mix() {
        let inp = input();
        let b = Betas::DEFAULT;
        // stab-heavy mixes want a fine hierarchy (comparisons dominate)
        let stabs = ExtentMix::from_extents(&[0; 64]);
        let fine = retuned_m(&inp, &b, 0.03, &stabs, 5);
        // long-extent mixes tolerate a coarse one (results dominate)
        let long = ExtentMix::from_extents(&[1 << 24; 64]);
        let coarse = retuned_m(&inp, &b, 0.03, &long, inp.max_m());
        assert!(
            fine > coarse,
            "stab mix chose m={fine}, long mix chose m={coarse}"
        );
        // an empty mix never moves m
        assert_eq!(retuned_m(&inp, &b, 0.03, &ExtentMix::new(), 7), 7);
    }

    #[test]
    fn measured_betas_are_positive_and_sane() {
        let b = measure_betas();
        assert!(b.cmp > 0.0 && b.acc > 0.0);
        assert!(
            b.cmp < 1e-5 && b.acc < 1e-5,
            "per-element costs look wrong: {b:?}"
        );
    }
}
