//! Shared partition-scan primitives.
//!
//! Every HINT variant walks partitions and reports their originals /
//! replicas under one of four comparison regimes (Lemmas 1, 2, 5, 6):
//! report everything blindly, filter by `st <= q.end`, filter by
//! `end >= q.st`, or apply the full overlap test. Before the `QuerySink`
//! refactor each variant hand-rolled these loops; this module is the
//! single implementation, generic over the entry type (full triplets,
//! `(id, st)` / `(id, end)` pairs, or bare id slices), the sortedness of
//! the run, and the sink.
//!
//! All helpers honour tombstones via the `skip` flag (indexes pass
//! `tombstones > 0`, so tombstone filtering costs nothing until the first
//! delete) and return the number of endpoint comparisons charged, using
//! the same accounting as the paper's §5.2.4 counters: a binary search
//! over `n` entries counts as `ceil(log2 n) + 1` probes, a linear filter
//! as one comparison per entry, and blind reporting as zero.

use crate::interval::{IntervalId, Time, TOMBSTONE};
use crate::sink::{QuerySink, SATURATION_POLL};

/// Approximate comparison count of one binary search over `n` entries.
#[inline]
pub(crate) fn bsearch_cost(n: usize) -> usize {
    (usize::BITS - n.leading_zeros()) as usize
}

/// Emits a single id, skipping tombstones when `skip` is set.
#[inline]
pub(crate) fn emit_id<S: QuerySink + ?Sized>(id: IntervalId, skip: bool, sink: &mut S) {
    if !skip || id != TOMBSTONE {
        sink.emit(id);
    }
}

/// Blind-reports a bare id slice (the comparison-free fast path: only the
/// ids column is touched), polling saturation between chunks. Without
/// tombstones each chunk goes through [`QuerySink::emit_slice`], so
/// collecting sinks get the pre-refactor `extend_from_slice` bulk copy.
#[inline]
pub(crate) fn emit_ids<S: QuerySink + ?Sized>(ids: &[IntervalId], skip: bool, sink: &mut S) {
    for chunk in ids.chunks(SATURATION_POLL) {
        if sink.is_saturated() {
            return;
        }
        if skip {
            for &id in chunk {
                if id != TOMBSTONE {
                    sink.emit(id);
                }
            }
        } else {
            sink.emit_slice(chunk);
        }
    }
}

/// Blind-reports every entry of a run (no comparisons), polling
/// saturation between chunks.
#[inline]
pub(crate) fn emit_all<T, S: QuerySink + ?Sized>(
    v: &[T],
    skip: bool,
    id: impl Fn(&T) -> IntervalId,
    sink: &mut S,
) {
    for chunk in v.chunks(SATURATION_POLL) {
        if sink.is_saturated() {
            return;
        }
        for e in chunk {
            emit_id(id(e), skip, sink);
        }
    }
}

/// Columnar filter: emits `ids[k]` where `pred(keys[k])`, polling
/// saturation between chunks (the §4.3 decomposed-table counterpart of
/// the row-wise filter helpers).
#[inline]
pub(crate) fn emit_filtered_ids<S: QuerySink + ?Sized>(
    ids: &[IntervalId],
    keys: &[Time],
    skip: bool,
    pred: impl Fn(Time) -> bool,
    sink: &mut S,
) {
    debug_assert_eq!(ids.len(), keys.len());
    let mut k = 0;
    for chunk in keys.chunks(SATURATION_POLL) {
        if sink.is_saturated() {
            return;
        }
        for &key in chunk {
            if pred(key) {
                emit_id(ids[k], skip, sink);
            }
            k += 1;
        }
    }
}

/// Reports entries with `st <= bound`. When `sorted` (run ascending by
/// `st`) the qualifying prefix is found by binary search; otherwise the
/// run is filtered linearly. Returns comparisons charged.
#[inline]
pub(crate) fn emit_st_prefix<T, S: QuerySink + ?Sized>(
    v: &[T],
    bound: Time,
    sorted: bool,
    skip: bool,
    st: impl Fn(&T) -> Time,
    id: impl Fn(&T) -> IntervalId,
    sink: &mut S,
) -> usize {
    if sorted {
        let ub = v.partition_point(|e| st(e) <= bound);
        emit_all(&v[..ub], skip, id, sink);
        bsearch_cost(v.len())
    } else {
        for chunk in v.chunks(SATURATION_POLL) {
            if sink.is_saturated() {
                break;
            }
            for e in chunk {
                if st(e) <= bound {
                    emit_id(id(e), skip, sink);
                }
            }
        }
        v.len()
    }
}

/// Reports entries with `end >= bound`. When `sorted` (run ascending by
/// `end`) the qualifying suffix is found by binary search; otherwise the
/// run is filtered linearly. Returns comparisons charged.
#[inline]
pub(crate) fn emit_end_suffix<T, S: QuerySink + ?Sized>(
    v: &[T],
    bound: Time,
    sorted: bool,
    skip: bool,
    end: impl Fn(&T) -> Time,
    id: impl Fn(&T) -> IntervalId,
    sink: &mut S,
) -> usize {
    if sorted {
        let lb = v.partition_point(|e| end(e) < bound);
        emit_all(&v[lb..], skip, id, sink);
        bsearch_cost(v.len())
    } else {
        for chunk in v.chunks(SATURATION_POLL) {
            if sink.is_saturated() {
                break;
            }
            for e in chunk {
                if end(e) >= bound {
                    emit_id(id(e), skip, sink);
                }
            }
        }
        v.len()
    }
}

/// Full overlap test `st <= q.end && end >= q.st` (the single-partition
/// Lemma-6 case). When `sorted` (ascending by `st`) only the binary-found
/// prefix is end-filtered. Returns comparisons charged.
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn emit_overlap<T, S: QuerySink + ?Sized>(
    v: &[T],
    qst: Time,
    qend: Time,
    sorted: bool,
    skip: bool,
    st: impl Fn(&T) -> Time,
    end: impl Fn(&T) -> Time,
    id: impl Fn(&T) -> IntervalId,
    sink: &mut S,
) -> usize {
    if sorted {
        let ub = v.partition_point(|e| st(e) <= qend);
        for chunk in v[..ub].chunks(SATURATION_POLL) {
            if sink.is_saturated() {
                break;
            }
            for e in chunk {
                if end(e) >= qst {
                    emit_id(id(e), skip, sink);
                }
            }
        }
        bsearch_cost(v.len()) + ub
    } else {
        for chunk in v.chunks(SATURATION_POLL) {
            if sink.is_saturated() {
                break;
            }
            for e in chunk {
                if st(e) <= qend && end(e) >= qst {
                    emit_id(id(e), skip, sink);
                }
            }
        }
        2 * v.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;

    fn entries() -> Vec<Interval> {
        // sorted by st; ends not monotone
        vec![
            Interval::new(1, 0, 9),
            Interval::new(2, 2, 3),
            Interval::new(3, 4, 20),
            Interval::new(4, 7, 8),
        ]
    }

    #[test]
    fn st_prefix_sorted_equals_unsorted() {
        let v = entries();
        for bound in 0..=10 {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            emit_st_prefix(&v, bound, true, false, |e| e.st, |e| e.id, &mut a);
            emit_st_prefix(&v, bound, false, false, |e| e.st, |e| e.id, &mut b);
            assert_eq!(a, b, "bound={bound}");
        }
    }

    #[test]
    fn end_suffix_sorted_equals_unsorted() {
        let mut v = entries();
        v.sort_unstable_by_key(|e| e.end);
        for bound in 0..=21 {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            emit_end_suffix(&v, bound, true, false, |e| e.end, |e| e.id, &mut a);
            emit_end_suffix(&v, bound, false, false, |e| e.end, |e| e.id, &mut b);
            assert_eq!(a, b, "bound={bound}");
        }
    }

    #[test]
    fn overlap_matches_filter() {
        let v = entries();
        for qst in 0..12 {
            for qend in qst..12 {
                let mut got = Vec::new();
                emit_overlap(
                    &v,
                    qst,
                    qend,
                    true,
                    false,
                    |e| e.st,
                    |e| e.end,
                    |e| e.id,
                    &mut got,
                );
                let want: Vec<IntervalId> = v
                    .iter()
                    .filter(|e| e.st <= qend && e.end >= qst)
                    .map(|e| e.id)
                    .collect();
                assert_eq!(got, want, "[{qst},{qend}]");
            }
        }
    }

    #[test]
    fn tombstones_skipped_only_when_asked() {
        let ids = [1, TOMBSTONE, 2];
        let mut kept = Vec::new();
        emit_ids(&ids, true, &mut kept);
        assert_eq!(kept, vec![1, 2]);
        let mut raw = Vec::new();
        emit_ids(&ids, false, &mut raw);
        assert_eq!(raw, vec![1, TOMBSTONE, 2]);
    }
}
