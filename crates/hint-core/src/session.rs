//! The serving-side engine handle: a [`Session`] owns a
//! [`ShardedIndex`], routes writes through [`MutableIndex`], and reseals
//! dirty shards on demand.
//!
//! A network front-end (see the workspace's `serve` crate) needs a
//! single object that (a) answers query batches through the parallel
//! executor, (b) applies writes without panicking on client-supplied
//! garbage — an out-of-domain insert from the wire must become an error
//! reply, not a server crash — and (c) knows whether any writes have
//! landed since the last seal, so a `Seal` request on a clean index is
//! free. `Session` is that object, kept in hint-core so any embedder
//! (not just the bundled wire protocol) can serve the sharded index the
//! same way.

use crate::interval::{Interval, RangeQuery, Time, TOMBSTONE};
use crate::shard::{MutableIndex, ShardedIndex};
use crate::sink::{MergeableSink, QuerySink};
use crate::IntervalIndex;

/// Why a client-requested write was refused. Unlike the index methods
/// themselves (which `assert!` on contract violations, appropriate for
/// in-process callers), a serving layer turns these into error replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteError {
    /// The interval lies (partly) outside the sharded domain, which is
    /// fixed at build time.
    OutOfDomain {
        /// Inclusive domain bounds of the session's index.
        domain: (Time, Time),
    },
    /// The interval uses the reserved [`TOMBSTONE`] id. Accepting it
    /// would ack a write that the next seal silently drops (the sealed
    /// stores key logical deletes on that sentinel) and corrupt the
    /// live count.
    ReservedId,
}

impl std::fmt::Display for WriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WriteError::OutOfDomain { domain } => write!(
                f,
                "interval outside the sharded domain [{}, {}]",
                domain.0, domain.1
            ),
            WriteError::ReservedId => {
                write!(f, "interval id {} is reserved (tombstone)", TOMBSTONE)
            }
        }
    }
}

/// An engine handle owning a sharded index: checked writes, dirty-shard
/// resealing, and batched query execution — the substrate a serving
/// front-end schedules work onto.
///
/// ```
/// use hint_core::{
///     Domain, HintMSubs, Interval, IntervalIndex, RangeQuery, Session, ShardedIndex, SubsConfig,
/// };
///
/// let data: Vec<Interval> = (0..100).map(|i| Interval::new(i, i * 10, i * 10 + 35)).collect();
/// let sharded = ShardedIndex::build_with(&data, 4, |slice, lo, hi| {
///     HintMSubs::build_with_domain(slice, Domain::new(lo, hi, 8), SubsConfig::full())
/// });
/// let mut session = Session::new(sharded);
/// assert!(!session.is_dirty()); // `new` seals the freshly built index
///
/// session.try_insert(Interval::new(500, 40, 90)).unwrap();
/// assert!(session.is_dirty());
/// assert!(session.seal_if_dirty()); // reseal folds the write in
/// assert_eq!(session.len(), 101);
/// assert!(session.index().exists(RangeQuery::new(40, 90)));
/// ```
pub struct Session<I: MutableIndex + Sync> {
    index: ShardedIndex<I>,
    /// Writes applied since the last seal. `ShardedIndex::seal` already
    /// skips clean shards (the inner indexes' idempotent fast path), so
    /// this flag only saves the per-shard no-op sweep — but it is also
    /// the serving layer's "was there anything to do" answer.
    dirty: bool,
}

impl<I: MutableIndex + Sync> Session<I> {
    /// Wraps (and seals) a sharded index. Sealing up front puts every
    /// shard in the read-optimized columnar layout before the first
    /// query arrives.
    pub fn new(mut index: ShardedIndex<I>) -> Self {
        IntervalIndex::seal(&mut index);
        Self {
            index,
            dirty: false,
        }
    }

    /// Wraps an index without sealing it (for embedders that manage the
    /// seal cycle themselves).
    pub fn new_unsealed(index: ShardedIndex<I>) -> Self {
        Self { index, dirty: true }
    }

    /// Read access to the underlying index (solo queries, batched
    /// execution, stats).
    pub fn index(&self) -> &ShardedIndex<I> {
        &self.index
    }

    /// Inclusive domain bounds `[min, max]` of the sharded index.
    pub fn domain(&self) -> (Time, Time) {
        let bounds = self.index.shard_bounds();
        (bounds[0].0, bounds[bounds.len() - 1].1)
    }

    /// True if writes have been applied since the last seal.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Number of live intervals.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if no intervals are live.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Checked insert: routes to the owning shards, or reports
    /// [`WriteError::OutOfDomain`] instead of panicking — the write path
    /// for requests arriving from untrusted clients.
    pub fn try_insert(&mut self, s: Interval) -> Result<(), WriteError> {
        if s.id == TOMBSTONE {
            return Err(WriteError::ReservedId);
        }
        let domain = self.domain();
        if s.st < domain.0 || s.end > domain.1 {
            return Err(WriteError::OutOfDomain { domain });
        }
        self.index.insert(s);
        self.dirty = true;
        Ok(())
    }

    /// Deletes an interval (exact id + endpoints match, the workspace
    /// contract), returning whether it was present. Out-of-domain
    /// intervals were never inserted, so they report `false` rather
    /// than an error.
    pub fn delete(&mut self, s: &Interval) -> bool {
        let found = self.index.delete(s);
        self.dirty |= found;
        found
    }

    /// Reseals the index if any writes landed since the last seal,
    /// folding overlay entries into the columnar arenas shard by shard
    /// (clean shards are skipped by the inner fast path, so the cost is
    /// O(dirty shards)). Returns whether a reseal actually ran.
    pub fn seal_if_dirty(&mut self) -> bool {
        if !self.dirty {
            return false;
        }
        IntervalIndex::seal(&mut self.index);
        self.dirty = false;
        true
    }
}

impl<I: MutableIndex + Sync> Session<I> {
    /// Evaluates a batch of queries through the sharded parallel
    /// executor's typed merge path, one [`MergeableSink`] per query
    /// (see [`ShardedIndex::query_batch_merge`]).
    pub fn query_batch_merge<S: MergeableSink + Send>(
        &self,
        queries: &[RangeQuery],
        sinks: &mut [S],
    ) {
        self.index.query_batch_merge(queries, sinks)
    }

    /// Solo query into a sink — the reference path batched serving must
    /// stay bit-identical to.
    pub fn query_sink<S: QuerySink + ?Sized>(&self, q: RangeQuery, sink: &mut S) {
        self.index.query_sink(q, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ScanOracle;
    use crate::{Domain, HintMSubs, SubsConfig};

    fn session() -> Session<HintMSubs> {
        let data: Vec<Interval> = (0..400)
            .map(|i| {
                let st = (i * 41) % 3_000;
                Interval::new(i, st, (st + (i % 11) * 30).min(4_095))
            })
            .collect();
        let sharded = ShardedIndex::build_with_domain(&data, 0, 4_095, 4, |slice, lo, hi| {
            HintMSubs::build_with_domain(slice, Domain::new(lo, hi, 8), SubsConfig::full())
        });
        Session::new(sharded)
    }

    #[test]
    fn new_seals_and_is_clean() {
        let mut s = session();
        assert!(!s.is_dirty());
        assert!(!s.seal_if_dirty()); // nothing to do
        assert_eq!(s.domain(), (0, 4_095));
    }

    #[test]
    fn out_of_domain_insert_is_an_error_not_a_panic() {
        let mut s = session();
        let err = s.try_insert(Interval::new(999, 4_000, 10_000)).unwrap_err();
        assert_eq!(err, WriteError::OutOfDomain { domain: (0, 4_095) });
        assert!(!s.is_dirty(), "failed insert must not dirty the session");
        assert!(err.to_string().contains("[0, 4095]"));
    }

    #[test]
    fn write_seal_query_cycle_matches_oracle() {
        let mut s = session();
        let mut oracle = ScanOracle::new(&{
            let data: Vec<Interval> = (0..400)
                .map(|i| {
                    let st = (i * 41) % 3_000;
                    Interval::new(i, st, (st + (i % 11) * 30).min(4_095))
                })
                .collect();
            data
        });
        let fresh = Interval::new(10_000, 100, 2_500);
        s.try_insert(fresh).unwrap();
        oracle.insert(fresh);
        assert!(s.is_dirty());
        assert!(s.seal_if_dirty());
        assert!(!s.is_dirty());
        let victim = Interval::new(0, 0, 0);
        assert_eq!(s.delete(&victim), oracle.delete(victim.id));
        assert!(s.is_dirty(), "successful delete dirties the session");
        let q = RangeQuery::new(0, 4_095);
        let mut got = Vec::new();
        s.query_sink(q, &mut got);
        got.sort_unstable();
        assert_eq!(got, oracle.query_sorted(q));
    }

    #[test]
    fn tombstone_id_insert_is_rejected() {
        let mut s = session();
        let err = s.try_insert(Interval::new(TOMBSTONE, 10, 20)).unwrap_err();
        assert_eq!(err, WriteError::ReservedId);
        assert!(!s.is_dirty());
        let live = s.len();
        s.seal_if_dirty();
        assert_eq!(s.len(), live, "rejected insert must not drift len");
    }

    #[test]
    fn absent_delete_keeps_the_session_clean() {
        let mut s = session();
        assert!(!s.delete(&Interval::new(777_777, 5, 9)));
        assert!(!s.is_dirty());
    }

    #[test]
    fn batch_merge_matches_solo() {
        let s = session();
        let queries: Vec<RangeQuery> = (0..32)
            .map(|i| RangeQuery::new(i * 100, i * 100 + 400))
            .collect();
        let mut merged: Vec<Vec<u64>> = queries.iter().map(|_| Vec::new()).collect();
        s.query_batch_merge(&queries, &mut merged);
        for (q, got) in queries.iter().zip(&merged) {
            let mut solo = Vec::new();
            s.query_sink(*q, &mut solo);
            assert_eq!(got, &solo, "{q:?}");
        }
    }
}
