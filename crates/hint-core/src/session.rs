//! The serving-side engine handle: a [`Session`] owns a persistent
//! [`ShardPool`] over a [`ShardedIndex`], routes writes to the owning
//! shard workers, reseals dirty shards on demand — and *adapts*: it
//! accumulates a per-shard histogram of the query extents each shard
//! actually serves, and at reseal time rebuilds dirty shards at the `m`
//! the §3.3 cost model picks for that observed mix
//! ([`crate::cost_model::retuned_m`]).
//!
//! A network front-end (see the workspace's `serve` crate) needs a
//! single object that (a) answers query batches through the pooled
//! executor, (b) applies writes without panicking on client-supplied
//! garbage — an out-of-domain insert from the wire must become an error
//! reply, not a server crash — and (c) knows whether any writes have
//! landed since the last seal, so a `Seal` request on a clean index is
//! free. `Session` is that object, kept in hint-core so any embedder
//! (not just the bundled wire protocol) can serve the sharded index the
//! same way.
//!
//! ## Re-tuning policy (`HINT_SERVE_RETUNE`)
//!
//! The paper picks `m` once, globally, from the expected query-extent
//! mix; a serving deployment observes the *actual* per-shard mix and can
//! do better between seals. [`RetunePolicy`] controls when:
//!
//! * `off` (default) — never re-tune; reseals only fold overlays in;
//! * `seal` — when a dirty shard is resealed ([`Session::seal_if_dirty`])
//!   and it has seen at least [`MIN_RETUNE_OBSERVATIONS`] local queries,
//!   rebuild it at the cost model's `m` for its observed mix;
//! * `idle` — `seal`, plus the serve scheduler may call
//!   [`Session::reseal_idle`] between batches so dirty shards fold in
//!   (and re-tune) without waiting for an explicit `Seal` request.
//!
//! Re-tuning never changes results — the rebuilt shard holds the same
//! live intervals over the same range — and
//! [`crate::cost_model::retuned_m`] guarantees the chosen `m` never
//! loses to the old one on the observed histogram.

use crate::hintm::snapshot::{self, RestoreError, SnapshotIo, StdSnapshotIo};
use crate::interval::{Interval, RangeQuery, Time, TOMBSTONE};
use crate::pool::ShardPool;
use crate::shard::{MutableIndex, ShardedIndex};
use crate::sink::{MergeableSink, QuerySink};
use crate::stats::{ExtentHistogram, ExtentMix};
use crate::IntervalIndex;
use std::collections::BTreeSet;
use std::io;
use std::path::Path;
use std::str::FromStr;

/// Minimum local queries a shard must have observed before a reseal may
/// re-tune its `m` — below this the histogram is noise, not a mix.
pub const MIN_RETUNE_OBSERVATIONS: u64 = 16;

/// When the session may rebuild a dirty shard at a re-tuned `m` (see
/// the module docs and the `HINT_SERVE_RETUNE` knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetunePolicy {
    /// Never re-tune.
    #[default]
    Off,
    /// Re-tune dirty shards whenever they are resealed.
    OnSeal,
    /// `OnSeal`, plus the serve scheduler reseals (and re-tunes) dirty
    /// shards between batches when the request stream goes idle.
    Idle,
}

impl FromStr for RetunePolicy {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, ()> {
        match s {
            "off" => Ok(RetunePolicy::Off),
            "seal" => Ok(RetunePolicy::OnSeal),
            "idle" => Ok(RetunePolicy::Idle),
            _ => Err(()),
        }
    }
}

impl std::fmt::Display for RetunePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RetunePolicy::Off => "off",
            RetunePolicy::OnSeal => "seal",
            RetunePolicy::Idle => "idle",
        })
    }
}

impl RetunePolicy {
    /// Reads `HINT_SERVE_RETUNE` (`off` / `seal` / `idle`); rejected
    /// values warn once on stderr and fall back to `off` (see
    /// [`crate::env`]).
    pub fn from_env() -> Self {
        crate::env::var_or(
            "HINT_SERVE_RETUNE",
            RetunePolicy::Off,
            "one of off/seal/idle",
            |_| true,
        )
    }
}

/// One completed re-tune: shard `shard` was rebuilt from depth `from`
/// to depth `to` at a reseal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetuneEvent {
    /// Index of the rebuilt shard.
    pub shard: usize,
    /// Hierarchy depth before the rebuild.
    pub from: u32,
    /// Hierarchy depth the cost model chose.
    pub to: u32,
}

/// Why a client-requested write was refused. Unlike the index methods
/// themselves (which `assert!` on contract violations, appropriate for
/// in-process callers), a serving layer turns these into error replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteError {
    /// The interval lies (partly) outside the sharded domain, which is
    /// fixed at build time.
    OutOfDomain {
        /// Inclusive domain bounds of the session's index.
        domain: (Time, Time),
    },
    /// The interval uses the reserved [`TOMBSTONE`] id. Accepting it
    /// would ack a write that the next seal silently drops (the sealed
    /// stores key logical deletes on that sentinel) and corrupt the
    /// live count.
    ReservedId,
}

impl std::fmt::Display for WriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WriteError::OutOfDomain { domain } => write!(
                f,
                "interval outside the sharded domain [{}, {}]",
                domain.0, domain.1
            ),
            WriteError::ReservedId => {
                write!(f, "interval id {} is reserved (tombstone)", TOMBSTONE)
            }
        }
    }
}

/// An engine handle owning a pooled sharded index: checked writes,
/// dirty-shard resealing with adaptive per-shard `m` re-tuning, and
/// batched query execution on the persistent shard workers — the
/// substrate a serving front-end schedules work onto.
///
/// ```
/// use hint_core::{
///     Domain, HintMSubs, Interval, IntervalIndex, RangeQuery, Session, ShardedIndex, SubsConfig,
/// };
///
/// let data: Vec<Interval> = (0..100).map(|i| Interval::new(i, i * 10, i * 10 + 35)).collect();
/// let sharded = ShardedIndex::build_with(&data, 4, |slice, lo, hi| {
///     HintMSubs::build_with_domain(slice, Domain::new(lo, hi, 8), SubsConfig::full())
/// });
/// let mut session = Session::new(sharded);
/// assert!(!session.is_dirty()); // `new` seals the freshly built index
///
/// session.try_insert(Interval::new(500, 40, 90)).unwrap();
/// assert!(session.is_dirty());
/// assert!(session.seal_if_dirty()); // reseal folds the write in
/// assert_eq!(session.len(), 101);
/// assert!(session.pool().exists(RangeQuery::new(40, 90)));
/// ```
pub struct Session<I: MutableIndex + Send + Sync + 'static> {
    pool: ShardPool<I>,
    /// Writes applied since the last seal; the serving layer's "was
    /// there anything to do" answer.
    dirty: bool,
    /// Which shards took those writes — the reseal's re-tune candidates.
    dirty_shards: BTreeSet<usize>,
    /// Per-shard observed query-extent mix (local sub-query extents).
    mixes: Vec<ExtentHistogram>,
    policy: RetunePolicy,
    /// Completed re-tunes, oldest first.
    events: Vec<RetuneEvent>,
}

impl<I: MutableIndex + Send + Sync + 'static> Session<I> {
    /// Wraps (and seals) a sharded index, moving its shards into a
    /// persistent [`ShardPool`]. Sealing up front puts every shard in
    /// the read-optimized columnar layout before the first query
    /// arrives. The re-tune policy comes from `HINT_SERVE_RETUNE`.
    pub fn new(index: ShardedIndex<I>) -> Self {
        Self::with_retune(index, RetunePolicy::from_env())
    }

    /// [`Session::new`] with an explicit re-tune policy instead of the
    /// environment knob.
    pub fn with_retune(mut index: ShardedIndex<I>, policy: RetunePolicy) -> Self {
        IntervalIndex::seal(&mut index);
        let pool = ShardPool::from_env(index);
        let mixes = (0..pool.shard_count())
            .map(|_| ExtentHistogram::new())
            .collect();
        Self {
            pool,
            dirty: false,
            dirty_shards: BTreeSet::new(),
            mixes,
            policy,
            events: Vec::new(),
        }
    }

    /// Wraps an index without sealing it (for embedders that manage the
    /// seal cycle themselves). Every shard starts dirty.
    pub fn new_unsealed(index: ShardedIndex<I>) -> Self {
        let pool = ShardPool::from_env(index);
        let mixes = (0..pool.shard_count())
            .map(|_| ExtentHistogram::new())
            .collect();
        let dirty_shards = (0..pool.shard_count()).collect();
        Self {
            pool,
            dirty: true,
            dirty_shards,
            mixes,
            policy: RetunePolicy::from_env(),
            events: Vec::new(),
        }
    }

    /// The underlying worker pool (solo queries, batched execution,
    /// dispatch stats). Queries issued directly on the pool bypass the
    /// session's extent accounting.
    pub fn pool(&self) -> &ShardPool<I> {
        &self.pool
    }

    /// Inclusive domain bounds `[min, max]` of the sharded index.
    pub fn domain(&self) -> (Time, Time) {
        self.pool.domain()
    }

    /// Configured logical read replicas per shard (the
    /// `HINT_READ_REPLICAS` knob; 1 = unreplicated). Read batches are
    /// dispatched across the replicas by the pool itself.
    pub fn read_replicas(&self) -> usize {
        self.pool.read_replicas()
    }

    /// True if writes have been applied since the last seal.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Number of live intervals.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// True if no intervals are live.
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }

    /// The active re-tune policy.
    pub fn retune_policy(&self) -> RetunePolicy {
        self.policy
    }

    /// Completed re-tunes, oldest first.
    pub fn retunes(&self) -> &[RetuneEvent] {
        &self.events
    }

    /// The observed query-extent mix of shard `j`.
    pub fn shard_mix(&self, j: usize) -> ExtentMix {
        self.mixes[j].snapshot()
    }

    /// Records the shard-local extents a query contributes to each
    /// routed shard's histogram.
    fn observe(&self, q: RangeQuery) {
        let (lo, hi) = self.pool.route(q);
        for j in lo..=hi {
            let lq = self.pool.local_query(j, q, lo, hi);
            self.mixes[j].record(lq.end - lq.st);
        }
    }

    /// Checked insert: routes to the owning shard workers, or reports
    /// [`WriteError::OutOfDomain`] instead of panicking — the write path
    /// for requests arriving from untrusted clients.
    pub fn try_insert(&mut self, s: Interval) -> Result<(), WriteError> {
        if s.id == TOMBSTONE {
            return Err(WriteError::ReservedId);
        }
        let domain = self.domain();
        if s.st < domain.0 || s.end > domain.1 {
            return Err(WriteError::OutOfDomain { domain });
        }
        let (lo, hi) = self.pool.route(RangeQuery {
            st: s.st,
            end: s.end,
        });
        self.pool.insert(s);
        self.dirty_shards.extend(lo..=hi);
        self.dirty = true;
        Ok(())
    }

    /// Deletes an interval (exact id + endpoints match, the workspace
    /// contract), returning whether it was present. Out-of-domain
    /// intervals were never inserted, so they report `false` rather
    /// than an error.
    pub fn delete(&mut self, s: &Interval) -> bool {
        let found = self.pool.delete(s);
        if found {
            let (lo, hi) = self.pool.route(RangeQuery {
                st: s.st,
                end: s.end,
            });
            self.dirty_shards.extend(lo..=hi);
            self.dirty = true;
        }
        found
    }

    /// Reseals the index if any writes landed since the last seal,
    /// folding overlay entries into the columnar arenas shard by shard
    /// (clean shards are skipped by the inner fast path, so the cost is
    /// O(dirty shards)). Under [`RetunePolicy::OnSeal`] /
    /// [`RetunePolicy::Idle`], each dirty shard that has observed at
    /// least [`MIN_RETUNE_OBSERVATIONS`] local queries is instead
    /// rebuilt at the `m` the cost model picks for its observed mix
    /// (recorded in [`Session::retunes`]). Returns whether a reseal
    /// actually ran.
    pub fn seal_if_dirty(&mut self) -> bool {
        if !self.dirty {
            return false;
        }
        if self.policy != RetunePolicy::Off {
            let candidates: Vec<usize> = self.dirty_shards.iter().copied().collect();
            for j in candidates {
                if self.mixes[j].observations() < MIN_RETUNE_OBSERVATIONS {
                    continue;
                }
                if let Some((from, to)) = self.pool.retune_shard(j, self.mixes[j].snapshot()) {
                    self.events.push(RetuneEvent { shard: j, from, to });
                }
            }
        }
        // fold remaining dirty overlays in; re-tuned shards come back
        // sealed, so their reseal is the free idempotent path
        self.pool.seal_all();
        self.dirty = false;
        self.dirty_shards.clear();
        true
    }

    /// The serve scheduler's between-batches hook: under
    /// [`RetunePolicy::Idle`], reseal (and re-tune) now if dirty.
    /// Returns whether a reseal ran.
    pub fn reseal_idle(&mut self) -> bool {
        if self.policy != RetunePolicy::Idle {
            return false;
        }
        self.seal_if_dirty()
    }
}

impl<I: MutableIndex + Send + Sync + 'static> Session<I> {
    /// Evaluates a batch of queries through the shard-worker pool's
    /// typed merge path, one [`MergeableSink`] per query (see
    /// [`ShardPool::query_batch_merge`]), recording each query's
    /// shard-local extents in the per-shard histograms.
    ///
    /// The histograms also pay back: each query's forked sinks are
    /// pre-sized from the mean result count previously observed for its
    /// extent bucket ([`ExtentHistogram::expected_results`], fed through
    /// [`ShardPool::query_batch_merge_hinted`]), and counting sinks
    /// report their totals back after the batch — a feedback loop that
    /// kills mid-scan fork reallocation once a workload's shape has been
    /// seen. Hints are capacity advice only and never change results.
    pub fn query_batch_merge<S: MergeableSink + Send + 'static>(
        &self,
        queries: &[RangeQuery],
        sinks: &mut [S],
    ) {
        for &q in queries {
            self.observe(q);
        }
        // Predict per-query result counts from each query's first routed
        // shard (where the merged total was recorded). All-None batches
        // skip the hint plumbing entirely.
        let mut hints: Vec<usize> = Vec::new();
        let mut any = false;
        for &q in queries {
            let (lo, _) = self.pool.route(q);
            match self.mixes[lo].expected_results(q.end - q.st) {
                Some(n) => {
                    any = true;
                    hints.push(n);
                }
                None => hints.push(0),
            }
        }
        let hints = if any { Some(hints.as_slice()) } else { None };
        self.pool.query_batch_merge_hinted(queries, sinks, hints);
        for (&q, sink) in queries.iter().zip(sinks.iter()) {
            if let Some(n) = sink.result_count() {
                let (lo, _) = self.pool.route(q);
                self.mixes[lo].record_results(q.end - q.st, n);
            }
        }
    }

    /// Solo query into a sink — the reference path batched serving must
    /// stay bit-identical to.
    pub fn query_sink<S: QuerySink + ?Sized>(&self, q: RangeQuery, sink: &mut S) {
        self.observe(q);
        self.pool.query_sink_pooled(q, sink)
    }
}

/// Durable snapshot/restore (see [`crate::hintm::snapshot`] for the
/// file format and crash-safety discipline). Implemented for the
/// sealed-arena index the snapshot format serializes.
impl Session<crate::HintMSubs> {
    /// Durably writes the session's index to `path`: reseals first (a
    /// write barrier folding every pending write in), clones the sealed
    /// shards out of their workers, then writes temp-file + fsync +
    /// atomic rename. A crash at any byte leaves either the old
    /// snapshot or the new one at `path`, never garbage. Returns the
    /// snapshot size in bytes.
    pub fn snapshot(&mut self, path: impl AsRef<Path>) -> io::Result<u64> {
        self.snapshot_with(path.as_ref(), &mut StdSnapshotIo::default())
    }

    /// [`snapshot`](Self::snapshot) through an explicit [`SnapshotIo`]
    /// (the fault-injection seam).
    pub fn snapshot_with(&mut self, path: &Path, io: &mut dyn SnapshotIo) -> io::Result<u64> {
        let index = self.sealed_clone()?;
        snapshot::write_index(&index, path, io)
    }

    /// The snapshot as in-memory bytes — what the wire `Snapshot` verb
    /// streams to a bootstrapping peer. Same reseal barrier as
    /// [`snapshot`](Self::snapshot), no file involved.
    pub fn snapshot_bytes(&mut self) -> io::Result<Vec<u8>> {
        let index = self.sealed_clone()?;
        snapshot::encode_index(&index)
    }

    fn sealed_clone(&mut self) -> io::Result<ShardedIndex<crate::HintMSubs>> {
        self.seal_if_dirty();
        self.pool.clone_index().map_err(io::Error::other)
    }

    /// The live interval set `(id, st, end)`, sorted by id — a reseal
    /// barrier followed by [`ShardedIndex::intervals`] on a clone of the
    /// sealed shards. The serving catalog uses this to (re)build its
    /// per-index record table when it adopts a session it didn't observe
    /// every write of: at registration over a pre-loaded index, and
    /// after a restore.
    pub fn live_intervals(&mut self) -> io::Result<Vec<Interval>> {
        Ok(self.sealed_clone()?.intervals())
    }

    /// Restores a session from a snapshot file: a fully-validated bulk
    /// read straight into the sealed arenas (no re-sort, no
    /// re-assignment pass). Any corruption yields a typed
    /// [`RestoreError`], never a panic. The re-tune policy comes from
    /// `HINT_SERVE_RETUNE`, as in [`Session::new`].
    pub fn restore(path: impl AsRef<Path>) -> Result<Self, RestoreError> {
        Self::restore_with(path.as_ref(), &mut StdSnapshotIo::default())
    }

    /// [`restore`](Self::restore) through an explicit [`SnapshotIo`]
    /// (the fault-injection seam).
    pub fn restore_with(path: &Path, io: &mut dyn SnapshotIo) -> Result<Self, RestoreError> {
        Ok(Self::new(snapshot::read_index(path, io)?))
    }

    /// Restores a session from snapshot bytes already in memory — the
    /// receiving half of peer bootstrap over the wire.
    pub fn restore_bytes(bytes: &[u8]) -> Result<Self, RestoreError> {
        Ok(Self::new(snapshot::decode_index(bytes)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ScanOracle;
    use crate::{Domain, HintMSubs, SubsConfig};

    fn session() -> Session<HintMSubs> {
        Session::with_retune(build(), RetunePolicy::Off)
    }

    fn build() -> ShardedIndex<HintMSubs> {
        let data: Vec<Interval> = (0..400)
            .map(|i| {
                let st = (i * 41) % 3_000;
                Interval::new(i, st, (st + (i % 11) * 30).min(4_095))
            })
            .collect();
        ShardedIndex::build_with_domain(&data, 0, 4_095, 4, |slice, lo, hi| {
            HintMSubs::build_with_domain(slice, Domain::new(lo, hi, 8), SubsConfig::full())
        })
    }

    #[test]
    fn new_seals_and_is_clean() {
        let mut s = session();
        assert!(!s.is_dirty());
        assert!(!s.seal_if_dirty()); // nothing to do
        assert_eq!(s.domain(), (0, 4_095));
    }

    #[test]
    fn out_of_domain_insert_is_an_error_not_a_panic() {
        let mut s = session();
        let err = s.try_insert(Interval::new(999, 4_000, 10_000)).unwrap_err();
        assert_eq!(err, WriteError::OutOfDomain { domain: (0, 4_095) });
        assert!(!s.is_dirty(), "failed insert must not dirty the session");
        assert!(err.to_string().contains("[0, 4095]"));
    }

    #[test]
    fn write_seal_query_cycle_matches_oracle() {
        let mut s = session();
        let mut oracle = ScanOracle::new(&{
            let data: Vec<Interval> = (0..400)
                .map(|i| {
                    let st = (i * 41) % 3_000;
                    Interval::new(i, st, (st + (i % 11) * 30).min(4_095))
                })
                .collect();
            data
        });
        let fresh = Interval::new(10_000, 100, 2_500);
        s.try_insert(fresh).unwrap();
        oracle.insert(fresh);
        assert!(s.is_dirty());
        assert!(s.seal_if_dirty());
        assert!(!s.is_dirty());
        let victim = Interval::new(0, 0, 0);
        assert_eq!(s.delete(&victim), oracle.delete(victim.id));
        assert!(s.is_dirty(), "successful delete dirties the session");
        let q = RangeQuery::new(0, 4_095);
        let mut got = Vec::new();
        s.query_sink(q, &mut got);
        got.sort_unstable();
        assert_eq!(got, oracle.query_sorted(q));
    }

    #[test]
    fn tombstone_id_insert_is_rejected() {
        let mut s = session();
        let err = s.try_insert(Interval::new(TOMBSTONE, 10, 20)).unwrap_err();
        assert_eq!(err, WriteError::ReservedId);
        assert!(!s.is_dirty());
        let live = s.len();
        s.seal_if_dirty();
        assert_eq!(s.len(), live, "rejected insert must not drift len");
    }

    #[test]
    fn absent_delete_keeps_the_session_clean() {
        let mut s = session();
        assert!(!s.delete(&Interval::new(777_777, 5, 9)));
        assert!(!s.is_dirty());
    }

    #[test]
    fn batch_merge_matches_solo() {
        let s = session();
        let queries: Vec<RangeQuery> = (0..32)
            .map(|i| RangeQuery::new(i * 100, i * 100 + 400))
            .collect();
        let mut merged: Vec<Vec<u64>> = queries.iter().map(|_| Vec::new()).collect();
        s.query_batch_merge(&queries, &mut merged);
        for (q, got) in queries.iter().zip(&merged) {
            let mut solo = Vec::new();
            s.query_sink(*q, &mut solo);
            assert_eq!(got, &solo, "{q:?}");
        }
    }

    #[test]
    fn result_feedback_never_changes_results() {
        // First batch records result counts; second batch runs with
        // histogram hints live. Both must match solo exactly.
        let s = session();
        let queries: Vec<RangeQuery> = (0..32)
            .map(|i| RangeQuery::new(i * 100, i * 100 + 400))
            .collect();
        for round in 0..2 {
            let mut merged: Vec<Vec<u64>> = queries.iter().map(|_| Vec::new()).collect();
            s.query_batch_merge(&queries, &mut merged);
            for (q, got) in queries.iter().zip(&merged) {
                let mut solo = Vec::new();
                s.query_sink(*q, &mut solo);
                assert_eq!(got, &solo, "round {round}: {q:?}");
            }
        }
    }

    #[test]
    fn policy_parses_and_renders() {
        assert_eq!("off".parse(), Ok(RetunePolicy::Off));
        assert_eq!("seal".parse(), Ok(RetunePolicy::OnSeal));
        assert_eq!("idle".parse(), Ok(RetunePolicy::Idle));
        assert_eq!("sometimes".parse::<RetunePolicy>(), Err(()));
        assert_eq!(RetunePolicy::OnSeal.to_string(), "seal");
        // the env layer accepts the policy as a hardened knob
        let parsed: Result<RetunePolicy, _> =
            crate::env::parse("HINT_SERVE_RETUNE", "idle", "", |_| true);
        assert_eq!(parsed, Ok(RetunePolicy::Idle));
        assert!(
            crate::env::parse::<RetunePolicy>("HINT_SERVE_RETUNE", "always", "", |_| true).is_err()
        );
    }

    #[test]
    fn observed_mix_lands_in_the_routed_shards() {
        let s = session();
        // shard 0 spans [0, 1023]: a stab and a short range there
        s.query_sink(RangeQuery::stab(5), &mut Vec::new());
        s.query_sink(RangeQuery::new(10, 20), &mut Vec::new());
        let mix = s.shard_mix(0);
        assert_eq!(mix.observations(), 2);
        assert_eq!(mix.counts[0], 1); // the stab
                                      // a domain-spanning query contributes one local extent per shard
        s.query_sink(RangeQuery::new(0, 4_095), &mut Vec::new());
        for j in 0..4 {
            assert!(s.shard_mix(j).observations() >= 1, "shard {j}");
        }
    }

    #[test]
    fn reseal_retunes_dirty_shards_under_the_mix() {
        let mut s = Session::with_retune(build(), RetunePolicy::OnSeal);
        // a stab-heavy mix over shard 0 (short intervals want deep m)
        for i in 0..(MIN_RETUNE_OBSERVATIONS + 4) {
            s.query_sink(RangeQuery::stab(i % 1_000), &mut Vec::new());
        }
        let before = s.pool().shard_ms()[0].unwrap();
        // dirty shard 0, then reseal
        s.try_insert(Interval::new(50_000, 10, 30)).unwrap();
        let mut want: Vec<u64> = Vec::new();
        s.query_sink(RangeQuery::new(0, 4_095), &mut want);
        want.sort_unstable();
        assert!(s.seal_if_dirty());
        let after = s.pool().shard_ms()[0].unwrap();
        if let Some(ev) = s.retunes().first() {
            assert_eq!(ev.shard, 0);
            assert_eq!(ev.from, before);
            assert_eq!(ev.to, after);
            assert_ne!(before, after);
        }
        // results are unchanged either way
        let mut got: Vec<u64> = Vec::new();
        s.query_sink(RangeQuery::new(0, 4_095), &mut got);
        got.sort_unstable();
        assert_eq!(got, want);
        // under Off, nothing ever retunes
        let mut off = Session::with_retune(build(), RetunePolicy::Off);
        for i in 0..(MIN_RETUNE_OBSERVATIONS + 4) {
            off.query_sink(RangeQuery::stab(i % 1_000), &mut Vec::new());
        }
        off.try_insert(Interval::new(50_000, 10, 30)).unwrap();
        off.seal_if_dirty();
        assert!(off.retunes().is_empty());
    }

    #[test]
    fn reseal_idle_only_fires_under_idle_policy() {
        let mut s = Session::with_retune(build(), RetunePolicy::OnSeal);
        s.try_insert(Interval::new(60_000, 10, 30)).unwrap();
        assert!(!s.reseal_idle(), "OnSeal must not reseal on idle");
        assert!(s.is_dirty());
        let mut s = Session::with_retune(build(), RetunePolicy::Idle);
        s.try_insert(Interval::new(60_000, 10, 30)).unwrap();
        assert!(s.reseal_idle());
        assert!(!s.is_dirty());
        assert!(!s.reseal_idle(), "clean session has nothing to fold");
    }

    fn drain(s: &Session<HintMSubs>) -> Vec<Vec<u64>> {
        let probes = [
            RangeQuery::new(0, 4_095),
            RangeQuery::new(100, 900),
            RangeQuery::stab(2_048),
            RangeQuery::new(3_000, 3_001),
        ];
        probes
            .iter()
            .map(|&q| {
                let mut out: Vec<u64> = Vec::new();
                s.query_sink(q, &mut out);
                out.sort_unstable();
                out
            })
            .collect()
    }

    #[test]
    fn snapshot_bytes_roundtrips_a_dirty_session() {
        let mut s = session();
        // pending writes must be folded in by the snapshot barrier
        s.try_insert(Interval::new(70_000, 5, 9)).unwrap();
        let victim = Interval::new(3, 123, 213); // i=3 in build()
        assert!(s.delete(&victim));
        let bytes = s.snapshot_bytes().unwrap();
        assert!(!s.is_dirty(), "snapshot must seal first");
        let r = Session::restore_bytes(&bytes).unwrap();
        assert_eq!(r.len(), s.len());
        assert_eq!(r.domain(), s.domain());
        assert_eq!(drain(&r), drain(&s));
        // and the restored session accepts writes like a fresh one
        let mut r = r;
        r.try_insert(Interval::new(70_001, 5, 9)).unwrap();
        assert!(r.seal_if_dirty());
        assert_eq!(r.len(), s.len() + 1);
    }

    #[test]
    fn snapshot_file_roundtrips_and_cleans_up_its_temp() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("hint-session-snap-{}.snap", std::process::id()));
        let mut s = session();
        s.snapshot(&path).unwrap();
        assert!(
            snapshot::tmp_siblings(&path).is_empty(),
            "temp must be renamed away"
        );
        let r = Session::restore(&path).unwrap();
        assert_eq!(drain(&r), drain(&s));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn restore_of_garbage_is_a_typed_error() {
        let err = Session::restore_bytes(b"definitely not a snapshot")
            .err()
            .unwrap();
        assert!(matches!(err, RestoreError::Format(_)));
        let missing = Session::restore(Path::new("/nonexistent/dir/x.snap"))
            .err()
            .unwrap();
        assert!(matches!(missing, RestoreError::Io(_)));
    }
}
