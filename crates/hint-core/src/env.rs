//! Hardened environment-variable parsing for the workspace's tuning
//! knobs (`HINT_SHARD_THREADS`, the `HINT_SERVE_*` family).
//!
//! Before this module, an unparsable knob silently fell back to its
//! default — a deployment that exported `HINT_SHARD_THREADS=four` got
//! machine-default parallelism and no hint why. Every knob now goes
//! through [`parse`] (pure, unit-testable) and [`var_or`] (reads the
//! process environment, warns **once per variable** on stderr when the
//! value is rejected, then falls back), so a garbled knob is tolerated
//! but never silent.

use std::collections::HashSet;
use std::fmt::Display;
use std::str::FromStr;
use std::sync::Mutex;

/// Why an environment value was rejected; carried in the warning line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvError {
    /// The value did not parse as the expected type.
    Unparsable {
        /// Variable name.
        name: String,
        /// The raw value found.
        raw: String,
    },
    /// The value parsed but failed the knob's validity constraint.
    Invalid {
        /// Variable name.
        name: String,
        /// The raw value found.
        raw: String,
        /// Human-readable constraint, e.g. `"must be >= 1"`.
        constraint: &'static str,
    },
}

impl Display for EnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnvError::Unparsable { name, raw } => {
                write!(f, "{name}={raw:?} is not a valid value")
            }
            EnvError::Invalid {
                name,
                raw,
                constraint,
            } => write!(f, "{name}={raw:?} rejected: {constraint}"),
        }
    }
}

/// A hardened boolean knob value (`HINT_BATCH_CLUSTER` and friends):
/// parses `on`/`off` plus the common spellings `1`/`0` and
/// `true`/`false` (case-insensitive), and renders canonically as
/// `on`/`off` so fallback warnings read the way the docs spell the
/// knob. Anything else is [`EnvError::Unparsable`] — a silent typo
/// (`ture`, `onn`) must not silently flip a dispatch strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Switch {
    /// The knob is enabled.
    On,
    /// The knob is disabled.
    Off,
}

impl Switch {
    /// True when the switch is [`Switch::On`].
    pub fn is_on(self) -> bool {
        matches!(self, Switch::On)
    }
}

impl FromStr for Switch {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, ()> {
        if ["on", "1", "true"]
            .iter()
            .any(|v| s.eq_ignore_ascii_case(v))
        {
            Ok(Switch::On)
        } else if ["off", "0", "false"]
            .iter()
            .any(|v| s.eq_ignore_ascii_case(v))
        {
            Ok(Switch::Off)
        } else {
            Err(())
        }
    }
}

impl Display for Switch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Switch::On => "on",
            Switch::Off => "off",
        })
    }
}

/// How the serve scheduler sizes its batch window (`HINT_SERVE_WINDOW`):
/// `fixed` keeps the configured `max_batch`/`max_delay` exactly as
/// given (the pre-controller behavior, byte-identical on the wire);
/// `adaptive` lets the scheduler's AIMD controller tune the window
/// between the configured min/max from observed arrival rate and batch
/// occupancy. Spelled like [`crate::RetunePolicy`]: the canonical
/// lowercase word, case-insensitive on input, anything else
/// [`EnvError::Unparsable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowMode {
    /// Static window: use `max_batch`/`max_delay` verbatim.
    Fixed,
    /// AIMD-controlled window within `[min_window, max_window]`.
    Adaptive,
}

impl FromStr for WindowMode {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, ()> {
        if s.eq_ignore_ascii_case("fixed") {
            Ok(WindowMode::Fixed)
        } else if s.eq_ignore_ascii_case("adaptive") {
            Ok(WindowMode::Adaptive)
        } else {
            Err(())
        }
    }
}

impl Display for WindowMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WindowMode::Fixed => "fixed",
            WindowMode::Adaptive => "adaptive",
        })
    }
}

/// Parses `raw` as a `T` and checks it against `valid` (with its
/// human-readable `constraint` for the error message). Pure: no
/// environment access, no logging — this is the function the unit tests
/// drive.
pub fn parse<T: FromStr>(
    name: &str,
    raw: &str,
    constraint: &'static str,
    valid: impl Fn(&T) -> bool,
) -> Result<T, EnvError> {
    let value: T = raw.trim().parse().map_err(|_| EnvError::Unparsable {
        name: name.to_string(),
        raw: raw.to_string(),
    })?;
    if !valid(&value) {
        return Err(EnvError::Invalid {
            name: name.to_string(),
            raw: raw.to_string(),
            constraint,
        });
    }
    Ok(value)
}

/// Variables already warned about, so a rejected knob logs once per
/// process rather than once per query batch.
fn warned() -> &'static Mutex<HashSet<String>> {
    static WARNED: std::sync::OnceLock<Mutex<HashSet<String>>> = std::sync::OnceLock::new();
    WARNED.get_or_init(|| Mutex::new(HashSet::new()))
}

/// Reads `name` from the process environment. Unset → `default`.
/// Set-but-rejected (unparsable, or failing `valid`) → one stderr
/// warning naming the variable, the offending value and the fallback,
/// then `default`.
pub fn var_or<T: FromStr + Display>(
    name: &str,
    default: T,
    constraint: &'static str,
    valid: impl Fn(&T) -> bool,
) -> T {
    let raw = match std::env::var(name) {
        Ok(raw) => raw,
        Err(_) => return default,
    };
    match parse(name, &raw, constraint, valid) {
        Ok(v) => v,
        Err(e) => {
            let mut warned = warned().lock().unwrap_or_else(|p| p.into_inner());
            if warned.insert(name.to_string()) {
                eprintln!("warning: ignoring {e}; using default {name}={default}");
            }
            default
        }
    }
}

/// `HINT_READ_REPLICAS`: logical read replicas per shard for
/// [`crate::ShardPool`] (1–64; default 1 = unreplicated). Values ≥ 2
/// enable epoch publication: reads run against published shard images
/// instead of queueing on the owning worker. Reader *threads* are sized
/// separately against the worker budget — see
/// [`crate::ShardPool::with_read_replicas`].
pub(crate) fn read_replicas() -> usize {
    var_or("HINT_READ_REPLICAS", 1usize, "1..=64", |&v| {
        (1..=64).contains(&v)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn threads(raw: &str) -> Result<usize, EnvError> {
        parse("HINT_SHARD_THREADS", raw, "must be >= 1", |&n: &usize| {
            n >= 1
        })
    }

    #[test]
    fn valid_values_parse() {
        assert_eq!(threads("4"), Ok(4));
        assert_eq!(threads(" 16 "), Ok(16)); // whitespace tolerated
        assert_eq!(threads("1"), Ok(1));
    }

    #[test]
    fn garbage_is_unparsable() {
        for raw in ["four", "", "4x", "-2", "1.5", "0x10"] {
            match threads(raw) {
                Err(EnvError::Unparsable { name, raw: got }) => {
                    assert_eq!(name, "HINT_SHARD_THREADS");
                    assert_eq!(got, raw);
                }
                other => panic!("{raw:?} should be unparsable, got {other:?}"),
            }
        }
    }

    #[test]
    fn constraint_violations_are_invalid() {
        match threads("0") {
            Err(EnvError::Invalid { constraint, .. }) => {
                assert_eq!(constraint, "must be >= 1");
            }
            other => panic!("0 should violate the constraint, got {other:?}"),
        }
    }

    #[test]
    fn errors_render_the_variable_and_value() {
        let msg = threads("four").unwrap_err().to_string();
        assert!(msg.contains("HINT_SHARD_THREADS"), "{msg}");
        assert!(msg.contains("four"), "{msg}");
        let msg = threads("0").unwrap_err().to_string();
        assert!(msg.contains("must be >= 1"), "{msg}");
    }

    #[test]
    fn var_or_defaults_when_unset() {
        // variable name chosen to never exist in a real environment
        let v = var_or("HINT_TEST_ENV_UNSET_XYZZY", 7usize, "must be >= 1", |&n| {
            n >= 1
        });
        assert_eq!(v, 7);
    }

    fn cluster(raw: &str) -> Result<Switch, EnvError> {
        parse("HINT_BATCH_CLUSTER", raw, "on or off", |_| true)
    }

    #[test]
    fn switch_valid_values_parse() {
        for raw in ["on", "On", "ON", "1", "true", "TRUE", " on "] {
            assert_eq!(cluster(raw), Ok(Switch::On), "{raw:?}");
        }
        for raw in ["off", "Off", "OFF", "0", "false", "FALSE", " off "] {
            assert_eq!(cluster(raw), Ok(Switch::Off), "{raw:?}");
        }
        assert!(Switch::On.is_on());
        assert!(!Switch::Off.is_on());
    }

    #[test]
    fn switch_garbage_is_unparsable() {
        for raw in ["", "yes", "no", "2", "onn", "ture", "o n"] {
            match cluster(raw) {
                Err(EnvError::Unparsable { name, raw: got }) => {
                    assert_eq!(name, "HINT_BATCH_CLUSTER");
                    assert_eq!(got, raw);
                }
                other => panic!("{raw:?} should be unparsable, got {other:?}"),
            }
        }
    }

    #[test]
    fn switch_renders_canonically() {
        assert_eq!(Switch::On.to_string(), "on");
        assert_eq!(Switch::Off.to_string(), "off");
    }

    fn window(raw: &str) -> Result<WindowMode, EnvError> {
        parse("HINT_SERVE_WINDOW", raw, "fixed or adaptive", |_| true)
    }

    #[test]
    fn window_mode_valid_values_parse() {
        for raw in ["fixed", "Fixed", "FIXED", " fixed "] {
            assert_eq!(window(raw), Ok(WindowMode::Fixed), "{raw:?}");
        }
        for raw in ["adaptive", "Adaptive", "ADAPTIVE", " adaptive "] {
            assert_eq!(window(raw), Ok(WindowMode::Adaptive), "{raw:?}");
        }
    }

    #[test]
    fn window_mode_garbage_is_unparsable() {
        for raw in ["", "auto", "aimd", "fixedd", "on", "1"] {
            match window(raw) {
                Err(EnvError::Unparsable { name, raw: got }) => {
                    assert_eq!(name, "HINT_SERVE_WINDOW");
                    assert_eq!(got, raw);
                }
                other => panic!("{raw:?} should be unparsable, got {other:?}"),
            }
        }
    }

    #[test]
    fn window_mode_renders_canonically() {
        assert_eq!(WindowMode::Fixed.to_string(), "fixed");
        assert_eq!(WindowMode::Adaptive.to_string(), "adaptive");
    }

    #[test]
    fn durations_parse_as_micros() {
        let us = parse("HINT_SERVE_MAX_DELAY_US", "250", "", |_: &u64| true);
        assert_eq!(us, Ok(250));
        assert!(parse("HINT_SERVE_MAX_DELAY_US", "soon", "", |_: &u64| true).is_err());
    }
}
