//! Allen-algebra selection queries on top of HINT^m (§6 future work).
//!
//! Each of Allen's thirteen interval relations \[1\] is evaluated as a
//! *minimal-superset range probe* on the underlying [`Hint`] followed by an
//! exact refinement against the record table. The probe is chosen so that
//! every qualifying interval must overlap the probed range — e.g. any `s`
//! that `CONTAINS q` must overlap the stabbing point `q.st` — so the
//! refinement only filters, never misses.

use crate::hintm::opt::Hint;
use crate::interval::{Interval, IntervalId, RangeQuery, Time};
use crate::sink::{IntervalLookup, MergeableSink, QuerySink};

/// Allen's thirteen relations, stated for a stored interval `s` relative
/// to the query interval `q`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllenRelation {
    /// `s.end < q.st`
    Before,
    /// `s.st > q.end`
    After,
    /// `s.end == q.st` (and `s.st < q.st`: the intervals only touch)
    Meets,
    /// `s.st == q.end` (and `s.end > q.end`)
    MetBy,
    /// `s.st < q.st && q.st < s.end && s.end < q.end` — strict overlap
    /// from the left (`s.end == q.st` is `Meets`, not `Overlaps`)
    Overlaps,
    /// mirror of [`AllenRelation::Overlaps`]
    OverlappedBy,
    /// `q.st < s.st && s.end < q.end`
    During,
    /// `s.st < q.st && q.end < s.end`
    Contains,
    /// `s.st == q.st && s.end < q.end`
    Starts,
    /// `s.st == q.st && s.end > q.end`
    StartedBy,
    /// `s.end == q.end && s.st > q.st`
    Finishes,
    /// `s.end == q.end && s.st < q.st`
    FinishedBy,
    /// `s.st == q.st && s.end == q.end`
    Equals,
}

impl AllenRelation {
    /// All thirteen relations.
    pub const ALL: [AllenRelation; 13] = [
        AllenRelation::Before,
        AllenRelation::After,
        AllenRelation::Meets,
        AllenRelation::MetBy,
        AllenRelation::Overlaps,
        AllenRelation::OverlappedBy,
        AllenRelation::During,
        AllenRelation::Contains,
        AllenRelation::Starts,
        AllenRelation::StartedBy,
        AllenRelation::Finishes,
        AllenRelation::FinishedBy,
        AllenRelation::Equals,
    ];

    /// This relation's position in [`Self::ALL`] — the stable byte the
    /// wire protocol uses to name a relation.
    pub fn as_u8(self) -> u8 {
        Self::ALL
            .iter()
            .position(|&r| r == self)
            .expect("relation is in ALL") as u8
    }

    /// Inverse of [`Self::as_u8`]; `None` for bytes ≥ 13 (the wire layer
    /// maps those to a recoverable bad-verb status).
    pub fn from_u8(b: u8) -> Option<Self> {
        Self::ALL.get(b as usize).copied()
    }

    /// The minimal-superset range probe for this relation over a store
    /// whose intervals all lie within `[min, max]`: every `s` with
    /// `rel(s, q)` is guaranteed to overlap the returned range, so an
    /// exact refinement with [`Self::matches`] only filters, never
    /// misses. Returns `None` when the relation is provably empty over
    /// that domain (e.g. `Before` with `q.st` at the domain's left edge).
    ///
    /// Any `[min, max]` that bounds the stored intervals is sound —
    /// tighter bounds only shrink the probe. [`AllenIndex`] passes the
    /// built domain's bounds; the serving catalog passes each index's
    /// domain.
    pub fn probe(self, q: RangeQuery, min: Time, max: Time) -> Option<RangeQuery> {
        Some(match self {
            AllenRelation::Before => {
                if q.st == 0 || q.st <= min {
                    return None;
                }
                RangeQuery::new(min.min(q.st - 1), q.st - 1)
            }
            AllenRelation::After => {
                if q.end >= max {
                    return None;
                }
                RangeQuery::new(q.end + 1, max)
            }
            AllenRelation::Meets | AllenRelation::Overlaps => RangeQuery::stab(q.st),
            AllenRelation::MetBy | AllenRelation::OverlappedBy => RangeQuery::stab(q.end),
            AllenRelation::During => q,
            AllenRelation::Contains
            | AllenRelation::Starts
            | AllenRelation::StartedBy
            | AllenRelation::Equals => RangeQuery::stab(q.st),
            AllenRelation::Finishes | AllenRelation::FinishedBy => RangeQuery::stab(q.end),
        })
    }

    /// The exact predicate of this relation for `s` against `q`.
    pub fn matches(self, s: &Interval, q: &RangeQuery) -> bool {
        match self {
            AllenRelation::Before => s.end < q.st,
            AllenRelation::After => s.st > q.end,
            AllenRelation::Meets => s.end == q.st && s.st < q.st,
            AllenRelation::MetBy => s.st == q.end && s.end > q.end,
            AllenRelation::Overlaps => s.st < q.st && s.end > q.st && s.end < q.end,
            AllenRelation::OverlappedBy => s.st > q.st && s.st < q.end && s.end > q.end,
            AllenRelation::During => s.st > q.st && s.end < q.end,
            AllenRelation::Contains => s.st < q.st && s.end > q.end,
            AllenRelation::Starts => s.st == q.st && s.end < q.end,
            AllenRelation::StartedBy => s.st == q.st && s.end > q.end,
            AllenRelation::Finishes => s.end == q.end && s.st > q.st,
            AllenRelation::FinishedBy => s.end == q.end && s.st < q.st,
            AllenRelation::Equals => s.st == q.st && s.end == q.end,
        }
    }
}

/// An [`IntervalLookup`] view over an id-sorted record slice — the
/// refinement table [`AllenIndex`] keeps, exposed so the probe/refine
/// pattern composes with any [`QuerySink`] via [`RelationFilter`].
#[derive(Debug, Clone, Copy)]
pub struct SortedRecords<'a>(pub &'a [Interval]);

impl IntervalLookup for SortedRecords<'_> {
    #[inline]
    fn get(&self, id: IntervalId) -> Option<Interval> {
        self.0
            .binary_search_by_key(&id, |s| s.id)
            .ok()
            .map(|i| self.0[i])
    }
}

/// A [`QuerySink`] adapter that refines a minimal-superset probe into an
/// exact Allen selection: each candidate id is resolved through the
/// carried [`IntervalLookup`] and forwarded to the inner sink only if
/// its stored interval satisfies `rel` against `q`.
///
/// Saturation is delegated, so a bounded inner sink (first-`k`, exists)
/// still terminates the probe scan early — the sink discipline the rest
/// of the workspace follows. When the inner sink is a [`MergeableSink`],
/// the filter is one too (fork clones the predicate and lookup, merge
/// folds the inner sinks), which is how the serving layer runs Allen
/// selections through the sharded batch walk unchanged.
#[derive(Debug, Clone)]
pub struct RelationFilter<L, S> {
    rel: AllenRelation,
    q: RangeQuery,
    lookup: L,
    inner: S,
}

impl<L: IntervalLookup, S: QuerySink> RelationFilter<L, S> {
    /// Wraps `inner`, forwarding only ids whose record satisfies
    /// `rel(s, q)`.
    pub fn new(rel: AllenRelation, q: RangeQuery, lookup: L, inner: S) -> Self {
        Self {
            rel,
            q,
            lookup,
            inner,
        }
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Consumes the filter, returning the wrapped sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<L: IntervalLookup, S: QuerySink> QuerySink for RelationFilter<L, S> {
    #[inline]
    fn emit(&mut self, id: IntervalId) {
        if let Some(s) = self.lookup.get(id) {
            if self.rel.matches(&s, &self.q) {
                self.inner.emit(id);
            }
        }
    }

    #[inline]
    fn is_saturated(&self) -> bool {
        self.inner.is_saturated()
    }
}

impl<L: IntervalLookup, S: MergeableSink> MergeableSink for RelationFilter<L, S> {
    fn fork(&self) -> Self {
        Self {
            rel: self.rel,
            q: self.q,
            lookup: self.lookup.clone(),
            inner: self.inner.fork(),
        }
    }

    fn merge(&mut self, other: Self) {
        self.inner.merge(other.inner);
    }

    fn is_bounded(&self) -> bool {
        self.inner.is_bounded()
    }

    fn fork_sized(&self, cap: usize) -> Self {
        Self {
            rel: self.rel,
            q: self.q,
            lookup: self.lookup.clone(),
            inner: self.inner.fork_sized(cap),
        }
    }

    fn result_count(&self) -> Option<usize> {
        self.inner.result_count()
    }
}

/// A [`Hint`] paired with an id-sorted record table, supporting Allen
/// selections and duration-constrained range queries.
#[derive(Debug, Clone)]
pub struct AllenIndex {
    hint: Hint,
    /// Records sorted by id for refinement lookups.
    records: Vec<Interval>,
    /// Domain bounds for the `Before`/`After` complement probes.
    min: Time,
    max: Time,
}

impl AllenIndex {
    /// Builds the index over `data` with `m + 1` HINT^m levels.
    pub fn build(data: &[Interval], m: u32) -> Self {
        let hint = Hint::build(data, m);
        let mut records = data.to_vec();
        records.sort_unstable_by_key(|s| s.id);
        let min = hint.domain().min();
        let max = hint.domain().max();
        Self {
            hint,
            records,
            min,
            max,
        }
    }

    /// Access to the underlying range index.
    pub fn hint(&self) -> &Hint {
        &self.hint
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Looks up a record by id (binary search over the id-sorted table).
    pub fn record(&self, id: IntervalId) -> Option<&Interval> {
        self.records
            .binary_search_by_key(&id, |s| s.id)
            .ok()
            .map(|i| &self.records[i])
    }

    /// Plain interval-overlap range query (delegates to HINT^m).
    pub fn range(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
        self.hint.query(q, out);
    }

    /// Selection by an Allen relation: ids of all `s` with `rel(s, q)`.
    pub fn select(&self, rel: AllenRelation, q: RangeQuery, out: &mut Vec<IntervalId>) {
        self.select_sink(rel, q, out);
    }

    /// Sink-threaded Allen selection: candidates from the minimal-
    /// superset probe are refined and emitted one by one, so nothing is
    /// materialized the caller didn't ask for and a bounded sink
    /// (first-`k`, exists) terminates the probe scan early.
    pub fn select_sink<S: QuerySink + ?Sized>(
        &self,
        rel: AllenRelation,
        q: RangeQuery,
        sink: &mut S,
    ) {
        let Some(probe) = rel.probe(q, self.min, self.max) else {
            return;
        };
        let mut filter = RelationFilter::new(rel, q, SortedRecords(&self.records), sink);
        self.hint.query_sink(probe, &mut filter);
    }

    /// Range query with a duration predicate (§6: combined temporal +
    /// duration selections, as supported by the period index \[4\]): reports
    /// intervals overlapping `q` whose length lies in
    /// `[min_duration, max_duration]`.
    pub fn range_with_duration(
        &self,
        q: RangeQuery,
        min_duration: Time,
        max_duration: Time,
        out: &mut Vec<IntervalId>,
    ) {
        self.range_with_duration_sink(q, min_duration, max_duration, out);
    }

    /// Sink-threaded duration-constrained range query; same refinement
    /// as [`Self::range_with_duration`], same early-exit discipline as
    /// [`Self::select_sink`].
    pub fn range_with_duration_sink<S: QuerySink + ?Sized>(
        &self,
        q: RangeQuery,
        min_duration: Time,
        max_duration: Time,
        sink: &mut S,
    ) {
        let mut filter = DurationFilter {
            records: SortedRecords(&self.records),
            min_duration,
            max_duration,
            inner: sink,
        };
        self.hint.query_sink(q, &mut filter);
    }
}

/// Internal refinement adapter for duration-constrained range queries.
struct DurationFilter<'a, 'b, S: ?Sized> {
    records: SortedRecords<'a>,
    min_duration: Time,
    max_duration: Time,
    inner: &'b mut S,
}

impl<S: QuerySink + ?Sized> QuerySink for DurationFilter<'_, '_, S> {
    #[inline]
    fn emit(&mut self, id: IntervalId) {
        if let Some(s) = self.records.get(id) {
            let d = s.duration();
            if d >= self.min_duration && d <= self.max_duration {
                self.inner.emit(id);
            }
        }
    }

    #[inline]
    fn is_saturated(&self) -> bool {
        self.inner.is_saturated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Vec<Interval> {
        vec![
            Interval::new(1, 0, 4),    // before q / meets at 5? no: end 4 < 5
            Interval::new(2, 2, 5),    // meets q = [5, 10]
            Interval::new(3, 3, 7),    // overlaps
            Interval::new(4, 5, 8),    // starts
            Interval::new(5, 5, 10),   // equals
            Interval::new(6, 5, 12),   // started-by
            Interval::new(7, 6, 9),    // during
            Interval::new(8, 6, 10),   // finishes
            Interval::new(9, 2, 10),   // finished-by
            Interval::new(10, 4, 12),  // contains
            Interval::new(11, 8, 14),  // overlapped-by
            Interval::new(12, 10, 15), // met-by
            Interval::new(13, 11, 20), // after
        ]
    }

    fn select_sorted(idx: &AllenIndex, rel: AllenRelation, q: RangeQuery) -> Vec<IntervalId> {
        let mut out = Vec::new();
        idx.select(rel, q, &mut out);
        out.sort_unstable();
        out
    }

    #[test]
    fn thirteen_relations_partition_the_data() {
        let data = data();
        let idx = AllenIndex::build(&data, 5);
        let q = RangeQuery::new(5, 10);
        let mut seen = Vec::new();
        for rel in AllenRelation::ALL {
            seen.extend(select_sorted(&idx, rel, q));
        }
        seen.sort_unstable();
        let all: Vec<IntervalId> = (1..=13).collect();
        // Allen's relations are mutually exclusive and jointly exhaustive
        assert_eq!(seen, all);
    }

    #[test]
    fn each_relation_picks_its_witness() {
        let data = data();
        let idx = AllenIndex::build(&data, 5);
        let q = RangeQuery::new(5, 10);
        assert_eq!(select_sorted(&idx, AllenRelation::Before, q), vec![1]);
        assert_eq!(select_sorted(&idx, AllenRelation::Meets, q), vec![2]);
        assert_eq!(select_sorted(&idx, AllenRelation::Overlaps, q), vec![3]);
        assert_eq!(select_sorted(&idx, AllenRelation::Starts, q), vec![4]);
        assert_eq!(select_sorted(&idx, AllenRelation::Equals, q), vec![5]);
        assert_eq!(select_sorted(&idx, AllenRelation::StartedBy, q), vec![6]);
        assert_eq!(select_sorted(&idx, AllenRelation::During, q), vec![7]);
        assert_eq!(select_sorted(&idx, AllenRelation::Finishes, q), vec![8]);
        assert_eq!(select_sorted(&idx, AllenRelation::FinishedBy, q), vec![9]);
        assert_eq!(select_sorted(&idx, AllenRelation::Contains, q), vec![10]);
        assert_eq!(
            select_sorted(&idx, AllenRelation::OverlappedBy, q),
            vec![11]
        );
        assert_eq!(select_sorted(&idx, AllenRelation::MetBy, q), vec![12]);
        assert_eq!(select_sorted(&idx, AllenRelation::After, q), vec![13]);
    }

    #[test]
    fn matches_brute_force_on_random_data() {
        let mut x = 12345u64;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 33
        };
        let data: Vec<Interval> = (0..200)
            .map(|i| {
                let st = next() % 500;
                Interval::new(i, st, st + next() % 60)
            })
            .collect();
        let idx = AllenIndex::build(&data, 9);
        for qs in (0..500u64).step_by(23) {
            let q = RangeQuery::new(qs, qs + 40);
            for rel in AllenRelation::ALL {
                let got = select_sorted(&idx, rel, q);
                let mut want: Vec<IntervalId> = data
                    .iter()
                    .filter(|s| rel.matches(s, &q))
                    .map(|s| s.id)
                    .collect();
                want.sort_unstable();
                assert_eq!(got, want, "{rel:?} {q:?}");
            }
        }
    }

    #[test]
    fn relation_bytes_roundtrip_and_reject_out_of_range() {
        for (i, rel) in AllenRelation::ALL.into_iter().enumerate() {
            assert_eq!(rel.as_u8(), i as u8);
            assert_eq!(AllenRelation::from_u8(i as u8), Some(rel));
        }
        assert_eq!(AllenRelation::from_u8(13), None);
        assert_eq!(AllenRelation::from_u8(255), None);
    }

    #[test]
    fn select_sink_respects_saturation() {
        let data = data();
        let idx = AllenIndex::build(&data, 5);
        let q = RangeQuery::new(5, 10);
        let mut first = crate::FirstK::new(1);
        idx.select_sink(AllenRelation::During, q, &mut first);
        assert_eq!(first.ids(), &[7]);
        let mut exists = crate::ExistsSink::new();
        idx.select_sink(AllenRelation::After, q, &mut exists);
        assert!(exists.found());
    }

    #[test]
    fn relation_filter_merges_like_its_inner_sink() {
        let data = data();
        let q = RangeQuery::new(5, 10);
        let lookup = SortedRecords(&data);
        let mut filter =
            RelationFilter::new(AllenRelation::During, q, lookup, Vec::<IntervalId>::new());
        let mut fork = filter.fork();
        for s in &data {
            fork.emit(s.id);
        }
        filter.merge(fork);
        assert_eq!(filter.inner(), &vec![7]);
        assert_eq!(filter.result_count(), Some(1));
        assert_eq!(filter.into_inner(), vec![7]);
    }

    /// Probes must be supersets for any sound `[min, max]` bound: every
    /// matching record overlaps the probe range (or the probe is `None`
    /// and no record matches).
    #[test]
    fn probes_are_minimal_supersets_on_the_witness_set() {
        let data = data();
        let (min, max) = (0, 20);
        for qs in 0..=15u64 {
            for qlen in 0..=6u64 {
                let q = RangeQuery::new(qs, qs + qlen);
                for rel in AllenRelation::ALL {
                    let probe = rel.probe(q, min, max);
                    for s in &data {
                        if rel.matches(s, &q) {
                            let p = probe.unwrap_or_else(|| {
                                panic!("{rel:?} {q:?}: match {s:?} but empty probe")
                            });
                            assert!(
                                s.st <= p.end && s.end >= p.st,
                                "{rel:?} {q:?}: match {s:?} misses probe {p:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    mod boundary_properties {
        use super::*;
        use proptest::prelude::*;

        /// Endpoints drawn from a palette this tight make touching
        /// endpoints (meets / starts / finishes / equals) the common
        /// case rather than a rarity — exactly the boundary behaviour
        /// the Allen refinement must get right.
        fn tight_data(starts: &[u64], lens: &[u64]) -> Vec<Interval> {
            starts
                .iter()
                .zip(lens)
                .enumerate()
                .map(|(i, (&st, &len))| Interval::new(i as IntervalId + 1, st, st + len))
                .collect()
        }

        proptest! {
            #[test]
            fn every_relation_matches_brute_force_at_touching_endpoints(
                starts in prop::collection::vec(0u64..12, 1..48),
                lens in prop::collection::vec(0u64..5, 1..48),
                qs in 0u64..12,
                qlen in 0u64..5,
            ) {
                let data = tight_data(&starts, &lens);
                let idx = AllenIndex::build(&data, 5);
                let q = RangeQuery::new(qs, qs + qlen);
                for rel in AllenRelation::ALL {
                    let mut got = Vec::new();
                    idx.select_sink(rel, q, &mut got);
                    got.sort_unstable();
                    let mut want: Vec<IntervalId> = data
                        .iter()
                        .filter(|s| rel.matches(s, &q))
                        .map(|s| s.id)
                        .collect();
                    want.sort_unstable();
                    prop_assert_eq!(&got, &want, "{:?} {:?}", rel, q);
                }
            }

            #[test]
            // Allen's algebra partitions *proper* intervals only: a
            // point record [5,5] against a point query satisfies two
            // relations at once (e.g. Meets and FinishedBy), so this
            // property draws lengths from 1.. while the brute-force
            // property above still covers the degenerate points.
            fn relations_partition_every_tight_workload(
                starts in prop::collection::vec(0u64..10, 1..40),
                lens in prop::collection::vec(1u64..4, 1..40),
                qs in 0u64..10,
                qlen in 1u64..4,
            ) {
                let data = tight_data(&starts, &lens);
                let idx = AllenIndex::build(&data, 4);
                let q = RangeQuery::new(qs, qs + qlen);
                let mut seen = Vec::new();
                for rel in AllenRelation::ALL {
                    let before = seen.len();
                    idx.select_sink(rel, q, &mut seen);
                    // mutually exclusive: no id appears under two relations
                    prop_assert!(seen[before..].iter().all(|id| !seen[..before].contains(id)));
                }
                // jointly exhaustive: every record relates to q somehow
                prop_assert_eq!(seen.len(), data.len());
            }

            #[test]
            fn first_k_select_is_a_prefix_of_the_full_selection(
                starts in prop::collection::vec(0u64..12, 1..48),
                lens in prop::collection::vec(0u64..5, 1..48),
                qs in 0u64..12,
                k in 0usize..4,
            ) {
                let data = tight_data(&starts, &lens);
                let idx = AllenIndex::build(&data, 5);
                let q = RangeQuery::new(qs, qs + 2);
                for rel in AllenRelation::ALL {
                    let mut full = Vec::new();
                    idx.select_sink(rel, q, &mut full);
                    let mut first = crate::FirstK::new(k);
                    idx.select_sink(rel, q, &mut first);
                    prop_assert_eq!(first.ids(), &full[..k.min(full.len())]);
                }
            }
        }
    }

    #[test]
    fn duration_constrained_range() {
        let data = data();
        let idx = AllenIndex::build(&data, 5);
        let q = RangeQuery::new(5, 10);
        let mut out = Vec::new();
        idx.range_with_duration(q, 3, 4, &mut out);
        out.sort_unstable();
        // overlapping q with length in [3,4]: ids 2(3),3(4),4(3),7(3),8(4)
        assert_eq!(out, vec![2, 3, 4, 7, 8]);
    }
}
