//! Allen-algebra selection queries on top of HINT^m (§6 future work).
//!
//! Each of Allen's thirteen interval relations \[1\] is evaluated as a
//! *minimal-superset range probe* on the underlying [`Hint`] followed by an
//! exact refinement against the record table. The probe is chosen so that
//! every qualifying interval must overlap the probed range — e.g. any `s`
//! that `CONTAINS q` must overlap the stabbing point `q.st` — so the
//! refinement only filters, never misses.

use crate::hintm::opt::Hint;
use crate::interval::{Interval, IntervalId, RangeQuery, Time};

/// Allen's thirteen relations, stated for a stored interval `s` relative
/// to the query interval `q`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllenRelation {
    /// `s.end < q.st`
    Before,
    /// `s.st > q.end`
    After,
    /// `s.end == q.st` (and `s.st < q.st`: the intervals only touch)
    Meets,
    /// `s.st == q.end` (and `s.end > q.end`)
    MetBy,
    /// `s.st < q.st && q.st < s.end && s.end < q.end` — strict overlap
    /// from the left (`s.end == q.st` is `Meets`, not `Overlaps`)
    Overlaps,
    /// mirror of [`AllenRelation::Overlaps`]
    OverlappedBy,
    /// `q.st < s.st && s.end < q.end`
    During,
    /// `s.st < q.st && q.end < s.end`
    Contains,
    /// `s.st == q.st && s.end < q.end`
    Starts,
    /// `s.st == q.st && s.end > q.end`
    StartedBy,
    /// `s.end == q.end && s.st > q.st`
    Finishes,
    /// `s.end == q.end && s.st < q.st`
    FinishedBy,
    /// `s.st == q.st && s.end == q.end`
    Equals,
}

impl AllenRelation {
    /// All thirteen relations.
    pub const ALL: [AllenRelation; 13] = [
        AllenRelation::Before,
        AllenRelation::After,
        AllenRelation::Meets,
        AllenRelation::MetBy,
        AllenRelation::Overlaps,
        AllenRelation::OverlappedBy,
        AllenRelation::During,
        AllenRelation::Contains,
        AllenRelation::Starts,
        AllenRelation::StartedBy,
        AllenRelation::Finishes,
        AllenRelation::FinishedBy,
        AllenRelation::Equals,
    ];

    /// The exact predicate of this relation for `s` against `q`.
    pub fn matches(self, s: &Interval, q: &RangeQuery) -> bool {
        match self {
            AllenRelation::Before => s.end < q.st,
            AllenRelation::After => s.st > q.end,
            AllenRelation::Meets => s.end == q.st && s.st < q.st,
            AllenRelation::MetBy => s.st == q.end && s.end > q.end,
            AllenRelation::Overlaps => s.st < q.st && s.end > q.st && s.end < q.end,
            AllenRelation::OverlappedBy => s.st > q.st && s.st < q.end && s.end > q.end,
            AllenRelation::During => s.st > q.st && s.end < q.end,
            AllenRelation::Contains => s.st < q.st && s.end > q.end,
            AllenRelation::Starts => s.st == q.st && s.end < q.end,
            AllenRelation::StartedBy => s.st == q.st && s.end > q.end,
            AllenRelation::Finishes => s.end == q.end && s.st > q.st,
            AllenRelation::FinishedBy => s.end == q.end && s.st < q.st,
            AllenRelation::Equals => s.st == q.st && s.end == q.end,
        }
    }
}

/// A [`Hint`] paired with an id-sorted record table, supporting Allen
/// selections and duration-constrained range queries.
#[derive(Debug, Clone)]
pub struct AllenIndex {
    hint: Hint,
    /// Records sorted by id for refinement lookups.
    records: Vec<Interval>,
    /// Domain bounds for the `Before`/`After` complement probes.
    min: Time,
    max: Time,
}

impl AllenIndex {
    /// Builds the index over `data` with `m + 1` HINT^m levels.
    pub fn build(data: &[Interval], m: u32) -> Self {
        let hint = Hint::build(data, m);
        let mut records = data.to_vec();
        records.sort_unstable_by_key(|s| s.id);
        let min = hint.domain().min();
        let max = hint.domain().max();
        Self {
            hint,
            records,
            min,
            max,
        }
    }

    /// Access to the underlying range index.
    pub fn hint(&self) -> &Hint {
        &self.hint
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Looks up a record by id (binary search over the id-sorted table).
    pub fn record(&self, id: IntervalId) -> Option<&Interval> {
        self.records
            .binary_search_by_key(&id, |s| s.id)
            .ok()
            .map(|i| &self.records[i])
    }

    /// Plain interval-overlap range query (delegates to HINT^m).
    pub fn range(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
        self.hint.query(q, out);
    }

    /// Selection by an Allen relation: ids of all `s` with `rel(s, q)`.
    pub fn select(&self, rel: AllenRelation, q: RangeQuery, out: &mut Vec<IntervalId>) {
        let probe = match rel {
            AllenRelation::Before => {
                if q.st == 0 || q.st <= self.min {
                    return;
                }
                RangeQuery::new(self.min.min(q.st - 1), q.st - 1)
            }
            AllenRelation::After => {
                if q.end >= self.max {
                    return;
                }
                RangeQuery::new(q.end + 1, self.max)
            }
            AllenRelation::Meets | AllenRelation::Overlaps => RangeQuery::stab(q.st),
            AllenRelation::MetBy | AllenRelation::OverlappedBy => RangeQuery::stab(q.end),
            AllenRelation::During => q,
            AllenRelation::Contains
            | AllenRelation::Starts
            | AllenRelation::StartedBy
            | AllenRelation::Equals => RangeQuery::stab(q.st),
            AllenRelation::Finishes | AllenRelation::FinishedBy => RangeQuery::stab(q.end),
        };
        let mut candidates = Vec::new();
        self.hint.query(probe, &mut candidates);
        for id in candidates {
            if let Some(s) = self.record(id) {
                if rel.matches(s, &q) {
                    out.push(id);
                }
            }
        }
    }

    /// Range query with a duration predicate (§6: combined temporal +
    /// duration selections, as supported by the period index \[4\]): reports
    /// intervals overlapping `q` whose length lies in
    /// `[min_duration, max_duration]`.
    pub fn range_with_duration(
        &self,
        q: RangeQuery,
        min_duration: Time,
        max_duration: Time,
        out: &mut Vec<IntervalId>,
    ) {
        let mut candidates = Vec::new();
        self.hint.query(q, &mut candidates);
        for id in candidates {
            if let Some(s) = self.record(id) {
                let d = s.duration();
                if d >= min_duration && d <= max_duration {
                    out.push(id);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Vec<Interval> {
        vec![
            Interval::new(1, 0, 4),    // before q / meets at 5? no: end 4 < 5
            Interval::new(2, 2, 5),    // meets q = [5, 10]
            Interval::new(3, 3, 7),    // overlaps
            Interval::new(4, 5, 8),    // starts
            Interval::new(5, 5, 10),   // equals
            Interval::new(6, 5, 12),   // started-by
            Interval::new(7, 6, 9),    // during
            Interval::new(8, 6, 10),   // finishes
            Interval::new(9, 2, 10),   // finished-by
            Interval::new(10, 4, 12),  // contains
            Interval::new(11, 8, 14),  // overlapped-by
            Interval::new(12, 10, 15), // met-by
            Interval::new(13, 11, 20), // after
        ]
    }

    fn select_sorted(idx: &AllenIndex, rel: AllenRelation, q: RangeQuery) -> Vec<IntervalId> {
        let mut out = Vec::new();
        idx.select(rel, q, &mut out);
        out.sort_unstable();
        out
    }

    #[test]
    fn thirteen_relations_partition_the_data() {
        let data = data();
        let idx = AllenIndex::build(&data, 5);
        let q = RangeQuery::new(5, 10);
        let mut seen = Vec::new();
        for rel in AllenRelation::ALL {
            seen.extend(select_sorted(&idx, rel, q));
        }
        seen.sort_unstable();
        let all: Vec<IntervalId> = (1..=13).collect();
        // Allen's relations are mutually exclusive and jointly exhaustive
        assert_eq!(seen, all);
    }

    #[test]
    fn each_relation_picks_its_witness() {
        let data = data();
        let idx = AllenIndex::build(&data, 5);
        let q = RangeQuery::new(5, 10);
        assert_eq!(select_sorted(&idx, AllenRelation::Before, q), vec![1]);
        assert_eq!(select_sorted(&idx, AllenRelation::Meets, q), vec![2]);
        assert_eq!(select_sorted(&idx, AllenRelation::Overlaps, q), vec![3]);
        assert_eq!(select_sorted(&idx, AllenRelation::Starts, q), vec![4]);
        assert_eq!(select_sorted(&idx, AllenRelation::Equals, q), vec![5]);
        assert_eq!(select_sorted(&idx, AllenRelation::StartedBy, q), vec![6]);
        assert_eq!(select_sorted(&idx, AllenRelation::During, q), vec![7]);
        assert_eq!(select_sorted(&idx, AllenRelation::Finishes, q), vec![8]);
        assert_eq!(select_sorted(&idx, AllenRelation::FinishedBy, q), vec![9]);
        assert_eq!(select_sorted(&idx, AllenRelation::Contains, q), vec![10]);
        assert_eq!(
            select_sorted(&idx, AllenRelation::OverlappedBy, q),
            vec![11]
        );
        assert_eq!(select_sorted(&idx, AllenRelation::MetBy, q), vec![12]);
        assert_eq!(select_sorted(&idx, AllenRelation::After, q), vec![13]);
    }

    #[test]
    fn matches_brute_force_on_random_data() {
        let mut x = 12345u64;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 33
        };
        let data: Vec<Interval> = (0..200)
            .map(|i| {
                let st = next() % 500;
                Interval::new(i, st, st + next() % 60)
            })
            .collect();
        let idx = AllenIndex::build(&data, 9);
        for qs in (0..500u64).step_by(23) {
            let q = RangeQuery::new(qs, qs + 40);
            for rel in AllenRelation::ALL {
                let got = select_sorted(&idx, rel, q);
                let mut want: Vec<IntervalId> = data
                    .iter()
                    .filter(|s| rel.matches(s, &q))
                    .map(|s| s.id)
                    .collect();
                want.sort_unstable();
                assert_eq!(got, want, "{rel:?} {q:?}");
            }
        }
    }

    #[test]
    fn duration_constrained_range() {
        let data = data();
        let idx = AllenIndex::build(&data, 5);
        let q = RangeQuery::new(5, 10);
        let mut out = Vec::new();
        idx.range_with_duration(q, 3, 4, &mut out);
        out.sort_unstable();
        // overlapping q with length in [3,4]: ids 2(3),3(4),4(3),7(3),8(4)
        assert_eq!(out, vec![2, 3, 4, 7, 8]);
    }
}
