//! A linear-scan "index": the ground-truth oracle used by the test suite
//! and a sanity baseline for the benchmarks.
//!
//! `O(n)` per query, no build cost beyond copying the data. Every other
//! index in the workspace is validated against this one.

use crate::interval::{Interval, IntervalId, RangeQuery};
use crate::sink::QuerySink;

/// Brute-force scan over the full interval collection.
#[derive(Debug, Clone, Default)]
pub struct ScanOracle {
    data: Vec<Interval>,
}

impl ScanOracle {
    /// Builds the oracle over a collection (the data is copied).
    pub fn new(data: &[Interval]) -> Self {
        Self {
            data: data.to_vec(),
        }
    }

    /// Number of (live) intervals.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the oracle holds no intervals.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends an interval.
    pub fn insert(&mut self, s: Interval) {
        self.data.push(s);
    }

    /// Removes an interval by id (physically; the oracle needs no
    /// tombstones). Returns true if the id was present.
    pub fn delete(&mut self, id: IntervalId) -> bool {
        let before = self.data.len();
        self.data.retain(|s| s.id != id);
        self.data.len() != before
    }

    /// Reports the ids of all intervals overlapping `q` into `out`.
    pub fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
        self.query_sink(q, out)
    }

    /// Reports the ids of all intervals overlapping `q` into `sink`,
    /// stopping at saturation.
    pub fn query_sink<S: QuerySink + ?Sized>(&self, q: RangeQuery, sink: &mut S) {
        for s in &self.data {
            if sink.is_saturated() {
                return;
            }
            if s.overlaps(&q) {
                sink.emit(s.id);
            }
        }
    }

    /// Convenience wrapper returning a **sorted** result vector, the
    /// canonical form used when comparing indexes in tests.
    pub fn query_sorted(&self, q: RangeQuery) -> Vec<IntervalId> {
        let mut out = Vec::new();
        self.query(q, &mut out);
        out.sort_unstable();
        out
    }

    /// Number of results for `q` without materializing them.
    pub fn count(&self, q: RangeQuery) -> usize {
        self.data.iter().filter(|s| s.overlaps(&q)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Interval> {
        vec![
            Interval::new(1, 0, 10),
            Interval::new(2, 5, 5),
            Interval::new(3, 11, 20),
            Interval::new(4, 8, 15),
        ]
    }

    #[test]
    fn basic_queries() {
        let o = ScanOracle::new(&sample());
        assert_eq!(o.query_sorted(RangeQuery::new(0, 4)), vec![1]);
        assert_eq!(o.query_sorted(RangeQuery::new(5, 5)), vec![1, 2]);
        assert_eq!(o.query_sorted(RangeQuery::new(9, 12)), vec![1, 3, 4]);
        assert_eq!(o.query_sorted(RangeQuery::new(21, 30)), Vec::<u64>::new());
        assert_eq!(o.count(RangeQuery::new(0, 20)), 4);
    }

    #[test]
    fn insert_and_delete() {
        let mut o = ScanOracle::new(&sample());
        o.insert(Interval::new(5, 100, 110));
        assert_eq!(o.query_sorted(RangeQuery::new(105, 105)), vec![5]);
        assert!(o.delete(5));
        assert!(!o.delete(5));
        assert!(o.query_sorted(RangeQuery::new(105, 105)).is_empty());
        assert_eq!(o.len(), 4);
    }
}
