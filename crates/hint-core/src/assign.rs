//! Algorithm 1 of the paper: assignment of an interval to the hierarchical
//! partitions of HINT / HINT^m.
//!
//! Given a mapped interval `[a, b]` (both in `[0, 2^m - 1]`), the interval is
//! assigned to at most two partitions per level, walking bottom-up:
//!
//! * if the last bit of `a` is 1, the interval goes to `P_{l,a}` and `a`
//!   is incremented;
//! * if the last bit of `b` is 0, the interval goes to `P_{l,b}` and `b`
//!   is decremented;
//! * then the last bits are cut off (`a /= 2`, `b /= 2`) and the procedure
//!   repeats one level up, until `a > b`.
//!
//! # Originals vs replicas, `in` vs `aft` subdivisions
//!
//! Per §3.1, an interval `s` is an **original** in `P_{l,i}` iff
//! `prefix(l, map(s.st)) == i` (it *begins* inside the partition) and a
//! **replica** otherwise. This closed-form test is equivalent to the paper's
//! footnote-1 rule ("the first execution of line 5 adds an original, ..."):
//! once the `a`-branch fires at some level, `a` stays strictly above the
//! prefix of `map(s.st)` at every higher level (incrementing an odd offset
//! and halving lands strictly above the halved prefix), so at most one
//! emitted partition can contain the start — and exactly one always does.
//!
//! Similarly (§4.1), the interval **ends inside** `P_{l,i}` iff
//! `prefix(l, map(s.end)) == i`, otherwise it ends **after** the partition.

use crate::interval::Time;

/// Which of the four §4.1 subdivisions of a partition an interval falls in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubKind {
    /// Original that ends inside the partition (`P^{Oin}`).
    OriginalIn,
    /// Original that ends after the partition (`P^{Oaft}`).
    OriginalAft,
    /// Replica that ends inside the partition (`P^{Rin}`).
    ReplicaIn,
    /// Replica that ends after the partition (`P^{Raft}`).
    ReplicaAft,
}

impl SubKind {
    /// True for the two original subdivisions.
    #[inline]
    pub fn is_original(self) -> bool {
        matches!(self, SubKind::OriginalIn | SubKind::OriginalAft)
    }

    /// True for the two subdivisions whose intervals end inside the
    /// partition.
    #[inline]
    pub fn ends_inside(self) -> bool {
        matches!(self, SubKind::OriginalIn | SubKind::ReplicaIn)
    }

    /// Index of this subdivision in fixed `[Oin, Oaft, Rin, Raft]` tables
    /// (the single source of truth for per-kind counting/bucketing).
    #[inline]
    pub fn slot(self) -> usize {
        match self {
            SubKind::OriginalIn => 0,
            SubKind::OriginalAft => 1,
            SubKind::ReplicaIn => 2,
            SubKind::ReplicaAft => 3,
        }
    }
}

/// A single partition assignment produced by Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// Index level (0 = root, `m` = bottom).
    pub level: u32,
    /// Partition offset within the level (`0 .. 2^level`).
    pub offset: u64,
    /// Subdivision of the partition the interval belongs to.
    pub kind: SubKind,
}

/// Runs Algorithm 1 for the mapped interval `[a, b]` on an index with
/// bottom level `m`, invoking `emit` for every partition the interval is
/// assigned to.
///
/// The callback receives assignments bottom-up (level `m` first). Every
/// interval receives exactly one `Original*` assignment.
///
/// # Panics
/// Debug-asserts `a <= b` and `b < 2^m`.
pub fn for_each_assignment(m: u32, a: Time, b: Time, mut emit: impl FnMut(Assignment)) {
    debug_assert!(a <= b, "mapped interval must be non-degenerate: {a} > {b}");
    debug_assert!(
        m == 63 || b < (1u64 << m),
        "mapped endpoint {b} out of domain for m={m}"
    );
    let (st0, end0) = (a, b);
    let mut a = a;
    let mut b = b;
    let mut level = m as i64;
    while level >= 0 && a <= b {
        let l = level as u32;
        let shift = m - l;
        // prefix of the original (un-truncated) endpoints at this level,
        // used for the original/replica and in/aft classification.
        let pst = st0 >> shift;
        let pend = end0 >> shift;
        if a & 1 == 1 {
            emit(Assignment {
                level: l,
                offset: a,
                kind: classify(a, pst, pend),
            });
            a += 1;
        }
        // after the a-branch `a` may exceed `b`; the paper's loop only checks
        // `a <= b` at the top, so the b-branch still runs in that iteration.
        if b & 1 == 0 {
            emit(Assignment {
                level: l,
                offset: b,
                kind: classify(b, pst, pend),
            });
            b = b.wrapping_sub(1); // b may be 0 only when a==0; then a>b ends the loop
            if b == Time::MAX {
                break;
            }
        }
        a >>= 1;
        b >>= 1;
        level -= 1;
    }
}

/// Classifies an assignment into one of the four subdivisions given the
/// partition offset and the level-prefixes of the interval's endpoints.
#[inline]
fn classify(offset: u64, pst: u64, pend: u64) -> SubKind {
    debug_assert!(pst <= offset && offset <= pend);
    match (pst == offset, pend == offset) {
        (true, true) => SubKind::OriginalIn,
        (true, false) => SubKind::OriginalAft,
        (false, true) => SubKind::ReplicaIn,
        (false, false) => SubKind::ReplicaAft,
    }
}

/// Collects all assignments into a `Vec` (convenience for tests and for
/// deletion, which must visit every partition holding the interval).
pub fn assignments(m: u32, a: Time, b: Time) -> Vec<Assignment> {
    let mut out = Vec::new();
    for_each_assignment(m, a, b, |x| out.push(x));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn offsets(m: u32, a: Time, b: Time) -> Vec<(u32, u64, SubKind)> {
        assignments(m, a, b)
            .into_iter()
            .map(|x| (x.level, x.offset, x.kind))
            .collect()
    }

    #[test]
    fn paper_running_example_5_9() {
        // Figure 5: [5, 9] with m = 4 goes to P_{4,5} (original), P_{3,3}
        // and P_{3,4} (replicas).
        let got = offsets(4, 5, 9);
        assert_eq!(
            got,
            vec![
                (4, 5, SubKind::OriginalAft),
                (3, 3, SubKind::ReplicaAft),
                (3, 4, SubKind::ReplicaIn),
            ]
        );
    }

    #[test]
    fn point_interval_goes_to_one_bottom_partition() {
        for v in 0..16u64 {
            let got = assignments(4, v, v);
            assert_eq!(got.len(), 1, "point {v}");
            assert_eq!(got[0].level, 4);
            assert_eq!(got[0].offset, v);
            assert_eq!(got[0].kind, SubKind::OriginalIn);
        }
    }

    #[test]
    fn full_domain_interval_goes_to_root() {
        let got = offsets(4, 0, 15);
        assert_eq!(got, vec![(0, 0, SubKind::OriginalIn)]);
    }

    #[test]
    fn exactly_one_original_always() {
        let m = 6;
        for a in 0..64u64 {
            for b in a..64 {
                let asg = assignments(m, a, b);
                let originals = asg.iter().filter(|x| x.kind.is_original()).count();
                assert_eq!(originals, 1, "[{a},{b}]");
            }
        }
    }

    #[test]
    fn at_most_two_partitions_per_level() {
        let m = 6;
        for a in 0..64u64 {
            for b in a..64 {
                let asg = assignments(m, a, b);
                for l in 0..=m {
                    let cnt = asg.iter().filter(|x| x.level == l).count();
                    assert!(cnt <= 2, "[{a},{b}] level {l}: {cnt}");
                }
            }
        }
    }

    #[test]
    fn assigned_partitions_exactly_cover_the_interval() {
        // The union of the assigned partitions' spans must equal [a, b]
        // and the spans must be pairwise disjoint (each domain value is
        // covered exactly once).
        let m = 6;
        for a in 0..64u64 {
            for b in a..64 {
                let mut covered = vec![0u32; 64];
                for x in assignments(m, a, b) {
                    let shift = m - x.level;
                    let lo = x.offset << shift;
                    let hi = ((x.offset + 1) << shift) - 1;
                    for slot in covered.iter_mut().take(hi as usize + 1).skip(lo as usize) {
                        *slot += 1;
                    }
                }
                for (v, &c) in covered.iter().enumerate() {
                    let inside = (v as u64) >= a && (v as u64) <= b;
                    assert_eq!(
                        c,
                        u32::from(inside),
                        "[{a},{b}] value {v} covered {c} times"
                    );
                }
            }
        }
    }

    #[test]
    fn original_contains_start_replicas_do_not() {
        let m = 6;
        for a in 0..64u64 {
            for b in a..64 {
                for x in assignments(m, a, b) {
                    let shift = m - x.level;
                    let starts_here = (a >> shift) == x.offset;
                    assert_eq!(x.kind.is_original(), starts_here, "[{a},{b}] {x:?}");
                    let ends_here = (b >> shift) == x.offset;
                    assert_eq!(x.kind.ends_inside(), ends_here, "[{a},{b}] {x:?}");
                }
            }
        }
    }

    #[test]
    fn zero_to_zero_terminates() {
        let got = offsets(4, 0, 0);
        assert_eq!(got, vec![(4, 0, SubKind::OriginalIn)]);
    }

    #[test]
    fn m_zero_single_partition() {
        let got = offsets(0, 0, 0);
        assert_eq!(got, vec![(0, 0, SubKind::OriginalIn)]);
    }
}
