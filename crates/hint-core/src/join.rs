//! Interval overlap joins on top of HINT^m.
//!
//! The paper's related work (§2) stresses that join partitioning schemes
//! cannot replace interval *indices* because they do not support range
//! queries; the converse direction works fine: an index on one side turns
//! an overlap join into a batch of range queries. This module provides
//!
//! * [`index_join`] — index-nested-loop join: probe a built [`Hint`] with
//!   every interval of the outer collection;
//! * [`sweep_join`] — a forward-scan plane-sweep join (the classic
//!   sort-merge approach of the interval-join literature \[7\]) used as the
//!   unindexed baseline;
//! * count variants of both.
//!
//! Both algorithms emit each overlapping pair exactly once, as
//! `(outer id, inner id)`.

use crate::hintm::opt::Hint;
use crate::interval::{Interval, IntervalId};
use crate::sink::{CountSink, QuerySink};

/// A consumer of join result pairs — the pairwise counterpart of
/// [`QuerySink`], giving joins the same sink discipline as selections:
/// pairs stream into the sink as they are found (never buffered by the
/// join), and the join polls [`is_saturated`](Self::is_saturated)
/// between emissions so a bounded consumer (`LIMIT k`, a disconnected
/// wire client) terminates both the inner probe scans and the outer
/// loop early.
pub trait PairSink {
    /// Consumes one `(outer id, inner id)` pair.
    fn emit_pair(&mut self, outer: IntervalId, inner: IntervalId);

    /// True once the sink needs no further pairs; the join then stops.
    /// The default never saturates.
    fn is_saturated(&self) -> bool {
        false
    }
}

/// Collects every pair — the original `Vec`-building behaviour.
impl PairSink for Vec<(IntervalId, IntervalId)> {
    #[inline]
    fn emit_pair(&mut self, outer: IntervalId, inner: IntervalId) {
        self.push((outer, inner));
    }
}

/// Streams every pair into a callback, allocation-free.
#[derive(Debug)]
pub struct FnPairSink<F: FnMut(IntervalId, IntervalId)> {
    f: F,
}

impl<F: FnMut(IntervalId, IntervalId)> FnPairSink<F> {
    /// Wraps a pair callback.
    pub fn new(f: F) -> Self {
        Self { f }
    }
}

impl<F: FnMut(IntervalId, IntervalId)> PairSink for FnPairSink<F> {
    #[inline]
    fn emit_pair(&mut self, outer: IntervalId, inner: IntervalId) {
        (self.f)(outer, inner);
    }
}

/// Counts pairs without storing them.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountPairs {
    n: u64,
}

impl CountPairs {
    /// A zeroed pair counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pairs counted so far.
    pub fn count(&self) -> u64 {
        self.n
    }
}

impl PairSink for CountPairs {
    #[inline]
    fn emit_pair(&mut self, _outer: IntervalId, _inner: IntervalId) {
        self.n += 1;
    }
}

/// Keeps the first `k` pairs (in join emission order) and saturates,
/// terminating the join early — `LIMIT k` over a join result.
#[derive(Debug, Clone)]
pub struct FirstKPairs {
    k: usize,
    pairs: Vec<(IntervalId, IntervalId)>,
}

impl FirstKPairs {
    /// A sink retaining at most `k` pairs.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            pairs: Vec::with_capacity(k.min(1024)),
        }
    }

    /// The retained pairs (at most `k`).
    pub fn pairs(&self) -> &[(IntervalId, IntervalId)] {
        &self.pairs
    }

    /// Consumes the sink, returning the retained pairs.
    pub fn into_vec(self) -> Vec<(IntervalId, IntervalId)> {
        self.pairs
    }
}

impl PairSink for FirstKPairs {
    #[inline]
    fn emit_pair(&mut self, outer: IntervalId, inner: IntervalId) {
        if self.pairs.len() < self.k {
            self.pairs.push((outer, inner));
        }
    }

    #[inline]
    fn is_saturated(&self) -> bool {
        self.pairs.len() >= self.k
    }
}

/// Adapts one outer probe's id stream into pair emissions, delegating
/// saturation so a saturated pair sink aborts the probe scan itself.
struct ProbeAdapter<'a, P: ?Sized> {
    outer: IntervalId,
    sink: &'a mut P,
}

impl<P: PairSink + ?Sized> QuerySink for ProbeAdapter<'_, P> {
    #[inline]
    fn emit(&mut self, id: IntervalId) {
        self.sink.emit_pair(self.outer, id);
    }

    #[inline]
    fn is_saturated(&self) -> bool {
        self.sink.is_saturated()
    }
}

/// Index-nested-loop join: for every interval in `outer`, reports all
/// intervals of the indexed collection that overlap it. Pairs stream
/// straight from the index scan into `emit` — no per-probe result
/// buffering.
pub fn index_join(inner: &Hint, outer: &[Interval], emit: impl FnMut(IntervalId, IntervalId)) {
    index_join_sink(inner, outer, &mut FnPairSink::new(emit));
}

/// Sink-threaded index-nested-loop join: each probe's emissions stream
/// into `sink` as `(outer id, inner id)` pairs, and a saturated sink
/// stops both the running probe and the outer loop.
pub fn index_join_sink<P: PairSink + ?Sized>(inner: &Hint, outer: &[Interval], sink: &mut P) {
    for r in outer {
        if sink.is_saturated() {
            return;
        }
        let mut probe = ProbeAdapter { outer: r.id, sink };
        inner.query_sink((*r).into(), &mut probe);
    }
}

/// Counts the join result size without materializing pairs (each probe
/// runs through a [`CountSink`], so no result vector is ever built).
pub fn index_join_count(inner: &Hint, outer: &[Interval]) -> u64 {
    let mut count = 0u64;
    for r in outer {
        let mut sink = CountSink::new();
        inner.query_sink((*r).into(), &mut sink);
        count += sink.count() as u64;
    }
    count
}

/// Forward-scan plane-sweep overlap join \[7\]: both inputs are sorted by
/// start point; for each interval (in global start order) the opposite
/// collection is scanned forward while it still overlaps.
///
/// `O(|R| log |R| + |S| log |S| + K)` with small constants; the canonical
/// unindexed competitor for one-shot joins.
pub fn sweep_join(r: &[Interval], s: &[Interval], emit: impl FnMut(IntervalId, IntervalId)) {
    sweep_join_sink(r, s, &mut FnPairSink::new(emit));
}

/// Sink-threaded plane-sweep join; same emission order as
/// [`sweep_join`], with the saturation discipline of
/// [`index_join_sink`].
pub fn sweep_join_sink<P: PairSink + ?Sized>(r: &[Interval], s: &[Interval], sink: &mut P) {
    let mut r_sorted: Vec<Interval> = r.to_vec();
    let mut s_sorted: Vec<Interval> = s.to_vec();
    r_sorted.sort_unstable_by_key(|x| x.st);
    s_sorted.sort_unstable_by_key(|x| x.st);

    let (mut i, mut j) = (0usize, 0usize);
    while i < r_sorted.len() && j < s_sorted.len() {
        if sink.is_saturated() {
            return;
        }
        let rr = r_sorted[i];
        let ss = s_sorted[j];
        if rr.st <= ss.st {
            // forward scan S while it starts within rr
            for cand in &s_sorted[j..] {
                if cand.st > rr.end || sink.is_saturated() {
                    break;
                }
                sink.emit_pair(rr.id, cand.id);
            }
            i += 1;
        } else {
            for cand in &r_sorted[i..] {
                if cand.st > ss.end || sink.is_saturated() {
                    break;
                }
                sink.emit_pair(cand.id, ss.id);
            }
            j += 1;
        }
    }
    // No drain phase is needed: every pair is emitted by whichever side
    // starts first at the moment it becomes the scan anchor, and once one
    // collection is exhausted all its elements have already anchored.
}

/// Counts the plane-sweep join result size.
pub fn sweep_join_count(r: &[Interval], s: &[Interval]) -> u64 {
    let mut count = 0u64;
    sweep_join(r, s, |_, _| count += 1);
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_data(n: u64, dom: u64, max_len: u64, seed: u64, id0: u64) -> Vec<Interval> {
        let mut x = seed | 1;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 11
        };
        (0..n)
            .map(|i| {
                let st = next() % dom;
                let len = next() % max_len;
                Interval::new(id0 + i, st, (st + len).min(dom - 1).max(st))
            })
            .collect()
    }

    fn brute_force(r: &[Interval], s: &[Interval]) -> Vec<(IntervalId, IntervalId)> {
        let mut out = Vec::new();
        for a in r {
            for b in s {
                if a.overlaps_interval(b) {
                    out.push((a.id, b.id));
                }
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn index_join_matches_brute_force() {
        let r = lcg_data(300, 10_000, 500, 3, 0);
        let s = lcg_data(400, 10_000, 800, 7, 100_000);
        let idx = Hint::build(&s, 10);
        let mut got = Vec::new();
        index_join(&idx, &r, |a, b| got.push((a, b)));
        got.sort_unstable();
        assert_eq!(got, brute_force(&r, &s));
    }

    #[test]
    fn sweep_join_matches_brute_force() {
        let r = lcg_data(250, 5_000, 400, 11, 0);
        let s = lcg_data(350, 5_000, 600, 13, 100_000);
        let mut got = Vec::new();
        sweep_join(&r, &s, |a, b| got.push((a, b)));
        got.sort_unstable();
        assert_eq!(got, brute_force(&r, &s));
    }

    #[test]
    fn sweep_join_boundary_touch_counts_as_overlap() {
        let r = vec![Interval::new(1, 0, 10)];
        let s = vec![Interval::new(2, 10, 20), Interval::new(3, 11, 20)];
        let mut got = Vec::new();
        sweep_join(&r, &s, |a, b| got.push((a, b)));
        assert_eq!(got, vec![(1, 2)]);
    }

    #[test]
    fn counts_agree() {
        let r = lcg_data(500, 20_000, 1_000, 17, 0);
        let s = lcg_data(500, 20_000, 1_000, 19, 100_000);
        let idx = Hint::build(&s, 11);
        assert_eq!(index_join_count(&idx, &r), sweep_join_count(&r, &s));
    }

    #[test]
    fn self_join() {
        let r = lcg_data(200, 2_000, 300, 23, 0);
        let idx = Hint::build(&r, 9);
        let mut got = Vec::new();
        index_join(&idx, &r, |a, b| got.push((a, b)));
        got.sort_unstable();
        assert_eq!(got, brute_force(&r, &r));
        // every interval joins with itself
        assert!(got.iter().filter(|&&(a, b)| a == b).count() == r.len());
    }

    #[test]
    fn empty_sides() {
        let r = lcg_data(50, 1_000, 100, 29, 0);
        assert_eq!(sweep_join_count(&r, &[]), 0);
        assert_eq!(sweep_join_count(&[], &r), 0);
    }

    #[test]
    fn sink_threaded_joins_match_the_callback_spelling() {
        let r = lcg_data(200, 8_000, 400, 31, 0);
        let s = lcg_data(250, 8_000, 700, 37, 100_000);
        let idx = Hint::build(&s, 10);
        let mut via_emit = Vec::new();
        index_join(&idx, &r, |a, b| via_emit.push((a, b)));
        let mut via_sink: Vec<(IntervalId, IntervalId)> = Vec::new();
        index_join_sink(&idx, &r, &mut via_sink);
        assert_eq!(via_sink, via_emit);
        let mut count = CountPairs::new();
        index_join_sink(&idx, &r, &mut count);
        assert_eq!(count.count(), via_emit.len() as u64);
    }

    #[test]
    fn saturated_pair_sinks_stop_both_joins_early() {
        let r = lcg_data(300, 6_000, 500, 41, 0);
        let s = lcg_data(300, 6_000, 500, 43, 100_000);
        let idx = Hint::build(&s, 10);
        let mut full: Vec<(IntervalId, IntervalId)> = Vec::new();
        index_join_sink(&idx, &r, &mut full);
        assert!(full.len() > 8, "workload too sparse to test saturation");

        let mut first = FirstKPairs::new(8);
        index_join_sink(&idx, &r, &mut first);
        assert!(first.is_saturated());
        // the retained pairs are a prefix of the full emission order
        assert_eq!(first.pairs(), &full[..8]);

        let mut sweep_full: Vec<(IntervalId, IntervalId)> = Vec::new();
        sweep_join_sink(&r, &s, &mut sweep_full);
        let mut sweep_first = FirstKPairs::new(8);
        sweep_join_sink(&r, &s, &mut sweep_first);
        assert_eq!(sweep_first.pairs(), &sweep_full[..8]);
    }
}
