//! Interval overlap joins on top of HINT^m.
//!
//! The paper's related work (§2) stresses that join partitioning schemes
//! cannot replace interval *indices* because they do not support range
//! queries; the converse direction works fine: an index on one side turns
//! an overlap join into a batch of range queries. This module provides
//!
//! * [`index_join`] — index-nested-loop join: probe a built [`Hint`] with
//!   every interval of the outer collection;
//! * [`sweep_join`] — a forward-scan plane-sweep join (the classic
//!   sort-merge approach of the interval-join literature \[7\]) used as the
//!   unindexed baseline;
//! * count variants of both.
//!
//! Both algorithms emit each overlapping pair exactly once, as
//! `(outer id, inner id)`.

use crate::hintm::opt::Hint;
use crate::interval::{Interval, IntervalId};
use crate::sink::{CountSink, FnSink};

/// Index-nested-loop join: for every interval in `outer`, reports all
/// intervals of the indexed collection that overlap it. Pairs stream
/// straight from the index scan into `emit` — no per-probe result
/// buffering.
pub fn index_join(inner: &Hint, outer: &[Interval], mut emit: impl FnMut(IntervalId, IntervalId)) {
    for r in outer {
        let mut sink = FnSink::new(|s| emit(r.id, s));
        inner.query_sink((*r).into(), &mut sink);
    }
}

/// Counts the join result size without materializing pairs (each probe
/// runs through a [`CountSink`], so no result vector is ever built).
pub fn index_join_count(inner: &Hint, outer: &[Interval]) -> u64 {
    let mut count = 0u64;
    for r in outer {
        let mut sink = CountSink::new();
        inner.query_sink((*r).into(), &mut sink);
        count += sink.count() as u64;
    }
    count
}

/// Forward-scan plane-sweep overlap join \[7\]: both inputs are sorted by
/// start point; for each interval (in global start order) the opposite
/// collection is scanned forward while it still overlaps.
///
/// `O(|R| log |R| + |S| log |S| + K)` with small constants; the canonical
/// unindexed competitor for one-shot joins.
pub fn sweep_join(r: &[Interval], s: &[Interval], mut emit: impl FnMut(IntervalId, IntervalId)) {
    let mut r_sorted: Vec<Interval> = r.to_vec();
    let mut s_sorted: Vec<Interval> = s.to_vec();
    r_sorted.sort_unstable_by_key(|x| x.st);
    s_sorted.sort_unstable_by_key(|x| x.st);

    let (mut i, mut j) = (0usize, 0usize);
    while i < r_sorted.len() && j < s_sorted.len() {
        let rr = r_sorted[i];
        let ss = s_sorted[j];
        if rr.st <= ss.st {
            // forward scan S while it starts within rr
            for cand in &s_sorted[j..] {
                if cand.st > rr.end {
                    break;
                }
                emit(rr.id, cand.id);
            }
            i += 1;
        } else {
            for cand in &r_sorted[i..] {
                if cand.st > ss.end {
                    break;
                }
                emit(cand.id, ss.id);
            }
            j += 1;
        }
    }
    // No drain phase is needed: every pair is emitted by whichever side
    // starts first at the moment it becomes the scan anchor, and once one
    // collection is exhausted all its elements have already anchored.
}

/// Counts the plane-sweep join result size.
pub fn sweep_join_count(r: &[Interval], s: &[Interval]) -> u64 {
    let mut count = 0u64;
    sweep_join(r, s, |_, _| count += 1);
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_data(n: u64, dom: u64, max_len: u64, seed: u64, id0: u64) -> Vec<Interval> {
        let mut x = seed | 1;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 11
        };
        (0..n)
            .map(|i| {
                let st = next() % dom;
                let len = next() % max_len;
                Interval::new(id0 + i, st, (st + len).min(dom - 1).max(st))
            })
            .collect()
    }

    fn brute_force(r: &[Interval], s: &[Interval]) -> Vec<(IntervalId, IntervalId)> {
        let mut out = Vec::new();
        for a in r {
            for b in s {
                if a.overlaps_interval(b) {
                    out.push((a.id, b.id));
                }
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn index_join_matches_brute_force() {
        let r = lcg_data(300, 10_000, 500, 3, 0);
        let s = lcg_data(400, 10_000, 800, 7, 100_000);
        let idx = Hint::build(&s, 10);
        let mut got = Vec::new();
        index_join(&idx, &r, |a, b| got.push((a, b)));
        got.sort_unstable();
        assert_eq!(got, brute_force(&r, &s));
    }

    #[test]
    fn sweep_join_matches_brute_force() {
        let r = lcg_data(250, 5_000, 400, 11, 0);
        let s = lcg_data(350, 5_000, 600, 13, 100_000);
        let mut got = Vec::new();
        sweep_join(&r, &s, |a, b| got.push((a, b)));
        got.sort_unstable();
        assert_eq!(got, brute_force(&r, &s));
    }

    #[test]
    fn sweep_join_boundary_touch_counts_as_overlap() {
        let r = vec![Interval::new(1, 0, 10)];
        let s = vec![Interval::new(2, 10, 20), Interval::new(3, 11, 20)];
        let mut got = Vec::new();
        sweep_join(&r, &s, |a, b| got.push((a, b)));
        assert_eq!(got, vec![(1, 2)]);
    }

    #[test]
    fn counts_agree() {
        let r = lcg_data(500, 20_000, 1_000, 17, 0);
        let s = lcg_data(500, 20_000, 1_000, 19, 100_000);
        let idx = Hint::build(&s, 11);
        assert_eq!(index_join_count(&idx, &r), sweep_join_count(&r, &s));
    }

    #[test]
    fn self_join() {
        let r = lcg_data(200, 2_000, 300, 23, 0);
        let idx = Hint::build(&r, 9);
        let mut got = Vec::new();
        index_join(&idx, &r, |a, b| got.push((a, b)));
        got.sort_unstable();
        assert_eq!(got, brute_force(&r, &r));
        // every interval joins with itself
        assert!(got.iter().filter(|&&(a, b)| a == b).count() == r.len());
    }

    #[test]
    fn empty_sides() {
        let r = lcg_data(50, 1_000, 100, 29, 0);
        assert_eq!(sweep_join_count(&r, &[]), 0);
        assert_eq!(sweep_join_count(&[], &r), 0);
    }
}
