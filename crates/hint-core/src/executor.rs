//! Batched parallel query execution over a *borrowed* [`ShardedIndex`]
//! — the scoped, spawn-per-batch executor.
//!
//! This is the executor for callers that hold the index by reference:
//! every batch fans out under a [`crossbeam::thread::scope`], so worker
//! threads are created and joined *per batch*. The serving stack does
//! not use it anymore: [`crate::ShardPool`] moves the shards into
//! persistent, optionally core-pinned worker threads and dispatches
//! batches over channels with zero per-batch spawns (the `retune` bench
//! harness measures the two side by side). The scoped path remains the
//! right tool for one-shot batch work over an index you only borrow,
//! and is the reference implementation the pool must stay bit-identical
//! to.
//!
//! A batch of queries is *routed* first: every query contributes one
//! entry (its shard-local sub-query plus an is-first-shard flag) to the
//! sub-batch of each shard its range overlaps. Execution then fans out
//! with [`crossbeam::thread::scope`] — **one thread per shard that
//! received work**, capped at the machine's available parallelism (extra
//! shards are folded onto the workers in contiguous runs; set
//! `HINT_SHARD_THREADS` to override the cap) — and each thread drains
//! its sub-batches through the shards' inner indexes (which apply their
//! own shared-level-walk batching when sealed) into thread-local sinks.
//! On a single-core machine the executor degenerates to draining the
//! sub-batches inline, in shard order, with no spawns at all: sharding
//! still pays through shard-local batching (each shard's sub-batch walks
//! a smaller, shallower index back-to-back) while oversubscription costs
//! nothing. No locks are taken on the emit path; the only
//! synchronization is the scope join.
//!
//! The thread-local results are merged into the callers' sinks on the
//! calling thread, always in ascending shard order, so the merged output
//! is bit-identical to what the sequential [`ShardedIndex::query_sink`]
//! loop produces — regardless of how the OS scheduled the shard threads.
//! Two merge paths exist:
//!
//! * [`ShardedIndex::query_batch`] accepts the trait-level
//!   `&mut [&mut dyn QuerySink]` and buffers each (shard, query) result
//!   in a thread-local `Vec<IntervalId>`, merging via
//!   [`QuerySink::emit_slice`]. Saturating sinks are respected at merge
//!   time (a full [`FirstK`](crate::FirstK) never receives more than its
//!   `k`), though workers cannot observe saturation across threads.
//! * [`ShardedIndex::query_batch_merge`] is the typed fast path for
//!   [`MergeableSink`] consumers: every worker gets a
//!   [`fork`](MergeableSink::fork) of the caller's sink per routed query,
//!   saturation stops the shard-local scan early (a first-`k` fork stops
//!   its shard's scan at `k`), and the forks are folded back with the
//!   saturation-aware [`merge`](MergeableSink::merge).

use crate::interval::{IntervalId, RangeQuery};
use crate::shard::{FilterSink, Shard, ShardedIndex};
use crate::sink::{MergeableSink, QuerySink};
use crate::IntervalIndex;

/// One routed entry of a shard's sub-batch: the position of the query in
/// the caller's batch, the shard-local sub-query, and whether this shard
/// is the first the query routes to (replicas are reported there).
pub(crate) type Routed = (u32, RangeQuery, bool);

/// How many worker threads a batch may fan out over: the
/// `HINT_SHARD_THREADS` override if set, else the machine's available
/// parallelism. `0` is clamped to `1` (the long-standing way to force
/// the serial inline path); unparsable values warn once on stderr via
/// [`crate::env`] and fall back to the machine default. Also the budget
/// [`crate::ShardPool`] sizes its reader-replica fleet against.
pub(crate) fn worker_cap() -> usize {
    // `available_parallelism` is uncached by std and re-reads cgroup
    // state on Linux — far too expensive per batch; the machine default
    // cannot change mid-process, so resolve it once. The env override
    // stays a live read (cheap), preserving per-test/per-call semantics.
    static MACHINE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    let default =
        *MACHINE.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    crate::env::var_or("HINT_SHARD_THREADS", default, "a thread count", |_| true).max(1)
}

/// Whether the batch-clustering planning pass is enabled
/// (`HINT_BATCH_CLUSTER`, default on; hardened on/off parsing via
/// [`crate::env::Switch`]). Clustering sorts each shard's routed
/// sub-batch by local query start *once, at planning time*, so the
/// sealed shared-level walk can skip its own per-(shard, batch) sort —
/// the plan is built once and reused across every routed shard. Purely
/// a locality strategy: per-sink results are bit-identical either way.
pub(crate) fn cluster_enabled() -> bool {
    crate::env::var_or(
        "HINT_BATCH_CLUSTER",
        crate::env::Switch::On,
        "on or off",
        |_| true,
    )
    .is_on()
}

/// The clustering pass itself: orders every shard's sub-batch by the
/// shard-local sub-query's `(st, end)` — the same key the sealed walk
/// would have sorted mapped queries by. Stable, so equal-start queries
/// keep batch order and plans stay deterministic.
pub(crate) fn cluster_plan(plan: &mut [Vec<Routed>]) {
    for sub in plan.iter_mut() {
        if sub.len() > 1 {
            sub.sort_by_key(|&(_, lq, _)| (lq.st, lq.end));
        }
    }
}

/// Splits `items` into at most `workers` contiguous chunks of
/// near-equal size (ascending order preserved).
fn split_chunks<T>(mut items: Vec<T>, workers: usize) -> Vec<Vec<T>> {
    let per = items.len().div_ceil(workers.max(1)).max(1);
    let mut out = Vec::with_capacity(workers);
    while items.len() > per {
        let rest = items.split_off(per);
        out.push(std::mem::replace(&mut items, rest));
    }
    if !items.is_empty() {
        out.push(items);
    }
    out
}

impl<I: IntervalIndex + Sync> ShardedIndex<I> {
    /// Routes a batch: one sub-batch per shard, in batch order.
    fn plan(&self, queries: &[RangeQuery]) -> Vec<Vec<Routed>> {
        let mut plan: Vec<Vec<Routed>> = self.shards.iter().map(|_| Vec::new()).collect();
        for (qi, &q) in queries.iter().enumerate() {
            let (lo, hi) = self.route(q);
            for (j, sub) in plan[lo..=hi].iter_mut().enumerate() {
                let j = lo + j;
                sub.push((qi as u32, self.local_query(j, q, lo, hi), j == lo));
            }
        }
        plan
    }

    /// Evaluates a batch of queries, one sink per query, fanning the
    /// routed sub-batches out across shards in parallel and merging the
    /// per-shard results back in shard order. Each sink ends up with
    /// exactly what a solo [`ShardedIndex::query_sink`] call would have
    /// emitted, in the same order.
    ///
    /// # Panics
    /// Panics if `queries` and `sinks` have different lengths.
    pub fn query_batch(&self, queries: &[RangeQuery], sinks: &mut [&mut dyn QuerySink]) {
        self.query_batch_workers(queries, sinks, worker_cap())
    }

    /// [`query_batch`](Self::query_batch) with an explicit worker-thread
    /// cap instead of the machine default (`workers <= 1` drains the
    /// sub-batches inline with no spawns; results are identical either
    /// way).
    ///
    /// # Panics
    /// Panics if `queries` and `sinks` have different lengths.
    pub fn query_batch_workers(
        &self,
        queries: &[RangeQuery],
        sinks: &mut [&mut dyn QuerySink],
        workers: usize,
    ) {
        assert_eq!(queries.len(), sinks.len(), "one sink per query");
        if queries.is_empty() {
            return;
        }
        if self.shards.len() == 1 {
            // single shard, nothing to fan out: use the inner index's own
            // batch executor (shared level walk when sealed)
            return self.shards[0].index.query_batch(queries, sinks);
        }
        let mut plan = self.plan(queries);
        let presorted = cluster_enabled();
        if presorted {
            cluster_plan(&mut plan);
        }
        // shards with routed work, ascending
        let active: Vec<(usize, &[Routed])> = plan
            .iter()
            .enumerate()
            .filter(|(_, sub)| !sub.is_empty())
            .map(|(j, sub)| (j, sub.as_slice()))
            .collect();
        let workers = workers.min(active.len());
        if workers <= 1 {
            // single core (or shard): drain each sub-batch directly into
            // the callers' sinks, in shard order — zero-copy, and caller
            // saturation is visible to the scans
            for &(j, sub) in &active {
                self.shards[j].run_inline(sub, sinks, presorted);
            }
            return;
        }
        let results: Vec<Vec<(u32, Vec<IntervalId>)>> = {
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = split_chunks(active, workers)
                    .into_iter()
                    .map(|chunk| {
                        scope.spawn(move |_| {
                            chunk
                                .into_iter()
                                .map(|(j, sub)| self.shards[j].run_collect(sub, presorted))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            })
            .expect("shard executor scope")
        };
        // merge on the calling thread, ascending shard order per query
        for per_shard in &results {
            for (qi, ids) in per_shard {
                let sink = &mut *sinks[*qi as usize];
                if !sink.is_saturated() {
                    sink.emit_slice(ids);
                }
            }
        }
    }

    /// The typed batch path for [`MergeableSink`] consumers: workers fill
    /// per-query [`fork`](MergeableSink::fork)s of the callers' sinks
    /// (honouring fork saturation, so first-`k`/exists sub-scans
    /// terminate early inside each shard) and the forks are folded back
    /// with the saturation-aware [`merge`](MergeableSink::merge), in
    /// shard order, on the calling thread.
    ///
    /// # Panics
    /// Panics if `queries` and `sinks` have different lengths.
    pub fn query_batch_merge<S>(&self, queries: &[RangeQuery], sinks: &mut [S])
    where
        S: MergeableSink + Send,
    {
        self.query_batch_merge_workers(queries, sinks, worker_cap())
    }

    /// [`query_batch_merge`](Self::query_batch_merge) with an explicit
    /// worker-thread cap instead of the machine default.
    ///
    /// # Panics
    /// Panics if `queries` and `sinks` have different lengths.
    pub fn query_batch_merge_workers<S>(
        &self,
        queries: &[RangeQuery],
        sinks: &mut [S],
        workers: usize,
    ) where
        S: MergeableSink + Send,
    {
        assert_eq!(queries.len(), sinks.len(), "one sink per query");
        if queries.is_empty() {
            return;
        }
        if self.shards.len() == 1 {
            // monomorphized straight through: the inner sealed walk runs
            // against the concrete sink type with no vtable on the emit
            // path (a single shard has no replicas to suppress)
            let mut refs: Vec<&mut S> = sinks.iter_mut().collect();
            return self.shards[0]
                .index
                .query_batch_sinks(queries, &mut refs, false);
        }
        let mut plan = self.plan(queries);
        let presorted = cluster_enabled();
        if presorted {
            cluster_plan(&mut plan);
        }
        let active: Vec<(usize, &[Routed])> = plan
            .iter()
            .enumerate()
            .filter(|(_, sub)| !sub.is_empty())
            .map(|(j, sub)| (j, sub.as_slice()))
            .collect();
        let workers = workers.min(active.len());
        if workers <= 1 {
            // no parallelism available: skip the fork/merge machinery
            // entirely and drain straight into the callers' sinks — fully
            // monomorphized, shard order preserved
            for &(j, sub) in &active {
                self.shards[j].run_inline_merge(sub, sinks, presorted);
            }
            return;
        }
        // fork on the calling thread (forks then move into the workers)
        let jobs: Vec<(usize, Vec<(Routed, S)>)> = active
            .iter()
            .map(|&(j, sub)| {
                let job = sub
                    .iter()
                    .map(|&entry| {
                        let fork = sinks[entry.0 as usize].fork();
                        (entry, fork)
                    })
                    .collect();
                (j, job)
            })
            .collect();
        let results: Vec<Vec<(u32, S)>> = {
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = split_chunks(jobs, workers)
                    .into_iter()
                    .map(|chunk| {
                        scope.spawn(move |_| {
                            chunk
                                .into_iter()
                                .map(|(j, job)| self.shards[j].run_forks(job, presorted))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            })
            .expect("shard executor scope")
        };
        for per_shard in results {
            for (qi, fork) in per_shard {
                sinks[qi as usize].merge(fork);
            }
        }
    }
}

impl<I: IntervalIndex> Shard<I> {
    /// The inline dyn path (single worker): drains a routed sub-batch
    /// directly into the callers' sinks through the replica filter, one
    /// shared inner batch call for the whole sub-batch. Entries may
    /// arrive in any order (the clustering pass reorders them), so each
    /// entry *takes* its sink out of a per-query slot — a sub-batch
    /// never repeats a query, so every take succeeds.
    fn run_inline(&self, sub: &[Routed], sinks: &mut [&mut dyn QuerySink], presorted: bool) {
        let queries: Vec<RangeQuery> = sub.iter().map(|e| e.1).collect();
        let mut grabbed: Vec<Option<&mut dyn QuerySink>> =
            sinks.iter_mut().map(|s| Some(&mut **s)).collect();
        let mut wrappers: Vec<FilterSink<'_, dyn QuerySink>> = sub
            .iter()
            .map(|&(qi, _, is_first)| FilterSink {
                inner: grabbed[qi as usize]
                    .take()
                    .expect("sub-batch repeats a query"),
                replicas: (!is_first && !self.replicas.is_empty()).then_some(&self.replicas),
            })
            .collect();
        let mut refs: Vec<&mut FilterSink<'_, dyn QuerySink>> = wrappers.iter_mut().collect();
        self.index.query_batch_sinks(&queries, &mut refs, presorted);
    }

    /// The inline merge path (single worker): like
    /// [`run_inline`](Self::run_inline) but generic over the sink type,
    /// so the whole chain — replica filter, sealed level walk, regime
    /// dispatch, emissions — monomorphizes per concrete sink with no
    /// vtable call anywhere. This is the measured path on machines where
    /// the batch degenerates to inline execution.
    pub(crate) fn run_inline_merge<S: MergeableSink>(
        &self,
        sub: &[Routed],
        sinks: &mut [S],
        presorted: bool,
    ) {
        let queries: Vec<RangeQuery> = sub.iter().map(|e| e.1).collect();
        let mut grabbed: Vec<Option<&mut S>> = sinks.iter_mut().map(Some).collect();
        // When nothing can need suppressing — the shard holds no replicas,
        // or every routed entry is its query's first shard — the filter
        // wrapper is pure overhead on the emit path: drain straight into
        // the callers' sinks.
        if self.replicas.is_empty() || sub.iter().all(|e| e.2) {
            let mut refs: Vec<&mut S> = sub
                .iter()
                .map(|&(qi, _, _)| {
                    grabbed[qi as usize]
                        .take()
                        .expect("sub-batch repeats a query")
                })
                .collect();
            return self.index.query_batch_sinks(&queries, &mut refs, presorted);
        }
        let mut wrappers: Vec<FilterSink<'_, S>> = sub
            .iter()
            .map(|&(qi, _, is_first)| FilterSink {
                inner: grabbed[qi as usize]
                    .take()
                    .expect("sub-batch repeats a query"),
                replicas: (!is_first).then_some(&self.replicas),
            })
            .collect();
        let mut refs: Vec<&mut FilterSink<'_, S>> = wrappers.iter_mut().collect();
        self.index.query_batch_sinks(&queries, &mut refs, presorted);
    }

    /// Drains a routed sub-batch into thread-local result buffers, one
    /// per query, replicas suppressed for non-first entries. The whole
    /// sub-batch goes through the inner index's batch walk, so sealed
    /// inner indexes amortize one level walk across the sub-batch.
    pub(crate) fn run_collect(
        &self,
        sub: &[Routed],
        presorted: bool,
    ) -> Vec<(u32, Vec<IntervalId>)> {
        let queries: Vec<RangeQuery> = sub.iter().map(|e| e.1).collect();
        let mut bufs: Vec<Vec<IntervalId>> = sub.iter().map(|_| Vec::new()).collect();
        {
            let mut wrappers: Vec<FilterSink<'_, Vec<IntervalId>>> = bufs
                .iter_mut()
                .zip(sub)
                .map(|(buf, &(_, _, is_first))| FilterSink {
                    inner: buf,
                    replicas: (!is_first && !self.replicas.is_empty()).then_some(&self.replicas),
                })
                .collect();
            let mut refs: Vec<&mut FilterSink<'_, Vec<IntervalId>>> = wrappers.iter_mut().collect();
            self.index.query_batch_sinks(&queries, &mut refs, presorted);
        }
        sub.iter()
            .zip(bufs)
            .map(|(&(qi, _, _), buf)| (qi, buf))
            .collect()
    }

    /// Drains a routed sub-batch into the callers' sink forks. Fork
    /// saturation propagates into the scan, so saturating sinks keep
    /// their early exit within each shard.
    pub(crate) fn run_forks<S: MergeableSink + Send>(
        &self,
        job: Vec<(Routed, S)>,
        presorted: bool,
    ) -> Vec<(u32, S)> {
        let queries: Vec<RangeQuery> = job.iter().map(|(e, _)| e.1).collect();
        let firsts: Vec<bool> = job.iter().map(|(e, _)| e.2).collect();
        let mut out: Vec<(u32, S)> = job
            .into_iter()
            .map(|((qi, _, _), fork)| (qi, fork))
            .collect();
        {
            let mut wrappers: Vec<FilterSink<'_, S>> = out
                .iter_mut()
                .zip(&firsts)
                .map(|((_, fork), &is_first)| FilterSink {
                    inner: fork,
                    replicas: (!is_first && !self.replicas.is_empty()).then_some(&self.replicas),
                })
                .collect();
            let mut refs: Vec<&mut FilterSink<'_, S>> = wrappers.iter_mut().collect();
            self.index.query_batch_sinks(&queries, &mut refs, presorted);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CountSink, ExistsSink, FirstK};
    use crate::{HintMSubs, Interval, SubsConfig};

    fn data() -> Vec<Interval> {
        (0..2_000)
            .map(|i| {
                let st = (i * 53) % 16_000;
                Interval::new(i, st, (st + (i % 29) * 30).min(16_383))
            })
            .collect()
    }

    fn sharded(k: usize, seal: bool) -> ShardedIndex<HintMSubs> {
        let mut idx = ShardedIndex::build_with(&data(), k, |slice, lo, hi| {
            HintMSubs::build_with_domain(slice, crate::Domain::new(lo, hi, 9), SubsConfig::full())
        });
        if seal {
            IntervalIndex::seal(&mut idx);
        }
        idx
    }

    fn batch() -> Vec<RangeQuery> {
        (0..48u64)
            .map(|i| {
                let st = (i * 331) % 16_000;
                RangeQuery::new(st, (st + 40 + i * 60).min(16_383))
            })
            .collect()
    }

    #[test]
    fn parallel_batch_is_bit_identical_to_solo_at_any_worker_count() {
        for seal in [false, true] {
            for k in [1, 2, 4, 8] {
                let idx = sharded(k, seal);
                let queries = batch();
                let solo: Vec<Vec<IntervalId>> = queries
                    .iter()
                    .map(|&q| {
                        let mut v = Vec::new();
                        idx.query_sink(q, &mut v);
                        v
                    })
                    .collect();
                // inline (workers=1), undersubscribed (2), one thread per
                // shard (k), oversubscribed (k+3): all bit-identical
                for workers in [1, 2, k, k + 3] {
                    let mut bufs: Vec<Vec<IntervalId>> =
                        queries.iter().map(|_| Vec::new()).collect();
                    let mut sinks: Vec<&mut dyn QuerySink> =
                        bufs.iter_mut().map(|b| b as &mut dyn QuerySink).collect();
                    idx.query_batch_workers(&queries, &mut sinks, workers);
                    assert_eq!(solo, bufs, "k={k} seal={seal} workers={workers}");
                }
            }
        }
    }

    #[test]
    fn merge_path_is_bit_identical_at_any_worker_count() {
        let idx = sharded(8, true);
        let queries = batch();
        let mut solo: Vec<Vec<IntervalId>> = queries.iter().map(|_| Vec::new()).collect();
        for (q, buf) in queries.iter().zip(&mut solo) {
            idx.query_sink(*q, buf);
        }
        for workers in [1, 2, 5, 8, 16] {
            let mut merged: Vec<Vec<IntervalId>> = queries.iter().map(|_| Vec::new()).collect();
            idx.query_batch_merge_workers(&queries, &mut merged, workers);
            assert_eq!(solo, merged, "workers={workers}");
        }
    }

    #[test]
    fn split_chunks_preserves_order_and_covers_everything() {
        for n in [0usize, 1, 2, 5, 7, 8, 9] {
            for workers in [1usize, 2, 3, 8] {
                let items: Vec<usize> = (0..n).collect();
                let chunks = split_chunks(items, workers);
                assert!(chunks.len() <= workers.max(1), "n={n} workers={workers}");
                let flat: Vec<usize> = chunks.into_iter().flatten().collect();
                assert_eq!(flat, (0..n).collect::<Vec<_>>(), "n={n} workers={workers}");
            }
        }
    }

    #[test]
    fn merge_path_counts_and_exists_match_dyn_path() {
        let idx = sharded(4, true);
        let queries = batch();
        let mut counts = vec![CountSink::new(); queries.len()];
        idx.query_batch_merge(&queries, &mut counts);
        let mut exists = vec![ExistsSink::new(); queries.len()];
        idx.query_batch_merge(&queries, &mut exists);
        for (i, &q) in queries.iter().enumerate() {
            assert_eq!(counts[i].count(), idx.count(q), "count {q:?}");
            assert_eq!(exists[i].found(), idx.exists(q), "exists {q:?}");
        }
    }

    #[test]
    fn merge_path_first_k_is_bit_identical_to_solo_and_never_over_emits() {
        let idx = sharded(8, true);
        let queries = batch();
        for k in [0, 1, 3, 17] {
            let mut sinks: Vec<FirstK> = queries.iter().map(|_| FirstK::new(k)).collect();
            idx.query_batch_merge(&queries, &mut sinks);
            for (i, &q) in queries.iter().enumerate() {
                let mut solo = FirstK::new(k);
                idx.query_sink(q, &mut solo);
                assert!(sinks[i].len() <= k, "FirstK over-emitted past the merge");
                assert_eq!(sinks[i].ids(), solo.ids(), "k={k} {q:?}");
            }
        }
    }

    #[test]
    fn collect_forks_merge_in_shard_order() {
        let idx = sharded(4, false);
        let queries = batch();
        let mut merged: Vec<Vec<IntervalId>> = queries.iter().map(|_| Vec::new()).collect();
        idx.query_batch_merge(&queries, &mut merged);
        for (i, &q) in queries.iter().enumerate() {
            let mut solo = Vec::new();
            idx.query_sink(q, &mut solo);
            assert_eq!(merged[i], solo, "{q:?}");
        }
    }
}
