//! Range-query workloads (§5.1).
//!
//! > "On the real datasets, we ran range queries uniformly distributed in
//! > the domain. On the synthetic, the positions of the queries follow the
//! > distribution of the data. In both cases, the extent of the query
//! > intervals were fixed to a percentage of the domain size (default
//! > 0.1%). At each test, we ran 10K random queries."

use hint_core::{Interval, RangeQuery, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How query positions are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryGen {
    /// Query starts uniform over the domain (real-data experiments).
    Uniform,
    /// Query positions follow the data distribution: each query is
    /// anchored at the start of a random data interval (synthetic
    /// experiments).
    DataFollowing,
}

/// A reproducible batch of range queries.
#[derive(Debug, Clone)]
pub struct QueryWorkload {
    queries: Vec<RangeQuery>,
}

impl QueryWorkload {
    /// Default batch size used throughout the paper's evaluation.
    pub const DEFAULT_COUNT: usize = 10_000;

    /// Generates `count` queries of fixed `extent` (in absolute domain
    /// units; 0 means stabbing queries) over `[min, max]`.
    pub fn uniform(min: Time, max: Time, extent: Time, count: usize, seed: u64) -> Self {
        assert!(min <= max);
        let mut rng = StdRng::seed_from_u64(seed);
        let queries = (0..count)
            .map(|_| {
                let hi_start = max.saturating_sub(extent).max(min);
                let st = rng.gen_range(min..=hi_start);
                RangeQuery::new(st, (st + extent).min(max))
            })
            .collect();
        Self { queries }
    }

    /// Generates `count` queries whose starts coincide with the starts of
    /// randomly drawn data intervals (data-following distribution).
    ///
    /// # Panics
    /// Panics if `data` is empty.
    pub fn following(data: &[Interval], extent: Time, count: usize, seed: u64) -> Self {
        assert!(!data.is_empty());
        let max = data.iter().map(|s| s.end).max().unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let queries = (0..count)
            .map(|_| {
                let anchor = data[rng.gen_range(0..data.len())];
                let st = anchor.st;
                RangeQuery::new(st, (st + extent).min(max.max(st)))
            })
            .collect();
        Self { queries }
    }

    /// Generates queries with extent expressed as a fraction of the domain
    /// (the paper uses percentages: 0.01%, 0.05%, 0.1%, 0.5%, 1%).
    pub fn with_extent_fraction(
        gen: QueryGen,
        data: &[Interval],
        fraction: f64,
        count: usize,
        seed: u64,
    ) -> Self {
        assert!(!data.is_empty());
        let min = data.iter().map(|s| s.st).min().unwrap();
        let max = data.iter().map(|s| s.end).max().unwrap();
        let extent = ((max - min) as f64 * fraction) as Time;
        match gen {
            QueryGen::Uniform => Self::uniform(min, max, extent, count, seed),
            QueryGen::DataFollowing => Self::following(data, extent, count, seed),
        }
    }

    /// Stabbing-query workload (extent 0).
    pub fn stabbing(min: Time, max: Time, count: usize, seed: u64) -> Self {
        Self::uniform(min, max, 0, count, seed)
    }

    /// The generated queries.
    pub fn queries(&self) -> &[RangeQuery] {
        &self.queries
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True if the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

impl<'a> IntoIterator for &'a QueryWorkload {
    type Item = &'a RangeQuery;
    type IntoIter = std::slice::Iter<'a, RangeQuery>;
    fn into_iter(self) -> Self::IntoIter {
        self.queries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_respects_bounds_and_extent() {
        let w = QueryWorkload::uniform(100, 10_000, 50, 1_000, 1);
        assert_eq!(w.len(), 1_000);
        for q in &w {
            assert!(q.st >= 100 && q.end <= 10_000);
            assert!(q.extent() <= 50);
        }
    }

    #[test]
    fn stabbing_has_zero_extent() {
        let w = QueryWorkload::stabbing(0, 1_000, 100, 2);
        for q in &w {
            assert!(q.is_stab());
        }
    }

    #[test]
    fn following_anchors_at_data_starts() {
        let data = vec![
            Interval::new(1, 10, 20),
            Interval::new(2, 500, 600),
            Interval::new(3, 900, 950),
        ];
        let w = QueryWorkload::following(&data, 30, 200, 3);
        let starts: Vec<Time> = data.iter().map(|s| s.st).collect();
        for q in &w {
            assert!(starts.contains(&q.st), "{q:?}");
        }
    }

    #[test]
    fn extent_fraction() {
        let data = vec![Interval::new(1, 0, 99_999)];
        let w = QueryWorkload::with_extent_fraction(QueryGen::Uniform, &data, 0.001, 100, 4);
        for q in &w {
            assert_eq!(q.extent(), 99); // 0.1% of 99,999
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = QueryWorkload::uniform(0, 1_000_000, 1_000, 500, 9);
        let b = QueryWorkload::uniform(0, 1_000_000, 1_000, 500, 9);
        assert_eq!(a.queries(), b.queries());
    }
}
