//! Statistical clones of the paper's four real datasets (Table 4).
//!
//! The originals (Aarhus library loans, WebKit git history, NYC taxi
//! trips, GREEND power readings) are not redistributable, so each clone
//! reproduces the statistics that drive index behaviour:
//!
//! | dataset | cardinality | domain \[s\] | avg duration | duration profile |
//! |---------|------------:|-----------:|-------------:|------------------|
//! | BOOKS   | 2,312,602   | 31,507,200 | 6.98% of dom | long, heavy tail |
//! | WEBKIT  | 2,347,346   | 461,829,284| 7.19% of dom | long, heavy tail |
//! | TAXIS   | 172,668,003 | 31,768,287 | 758 s        | short            |
//! | GREEND  | 110,115,441 | 283,356,410| 15 s         | very short       |
//!
//! Durations follow a bounded Pareto on `[1, max]` whose shape is solved
//! numerically so the mean matches Table 4; positions are uniform over the
//! domain (loans/trips/readings arrive throughout the observation window).
//! A `scale` divisor shrinks cardinality *and* domain together, keeping
//! density, duration *ratios* (and therefore replication factors and
//! selectivities) identical — only absolute throughput changes.

use crate::dist::BoundedPareto;
use hint_core::{Interval, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The four real datasets of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RealDataset {
    /// Aarhus library book-lending periods (long intervals).
    Books,
    /// WebKit file-unchanged periods (very long domain, long intervals).
    Webkit,
    /// NYC taxi trips (huge cardinality, short intervals).
    Taxis,
    /// Austrian/Italian household power readings (very short intervals).
    Greend,
}

impl RealDataset {
    /// All four datasets, in the paper's column order.
    pub const ALL: [RealDataset; 4] = [
        RealDataset::Books,
        RealDataset::Webkit,
        RealDataset::Taxis,
        RealDataset::Greend,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            RealDataset::Books => "BOOKS",
            RealDataset::Webkit => "WEBKIT",
            RealDataset::Taxis => "TAXIS",
            RealDataset::Greend => "GREEND",
        }
    }

    /// Table 4 statistics: (cardinality, domain, avg duration, max
    /// duration).
    pub fn table4(self) -> (u64, Time, f64, Time) {
        match self {
            RealDataset::Books => (2_312_602, 31_507_200, 2_201_320.0, 31_406_400),
            RealDataset::Webkit => (2_347_346, 461_829_284, 33_206_300.0, 461_815_512),
            RealDataset::Taxis => (172_668_003, 31_768_287, 758.0, 2_148_385),
            RealDataset::Greend => (110_115_441, 283_356_410, 15.0, 59_468_008),
        }
    }

    /// A sensible default scale for ≈1-minute laptop experiments:
    /// clones land between ~150K and ~700K intervals.
    pub fn default_scale(self) -> u64 {
        match self {
            RealDataset::Books | RealDataset::Webkit => 16,
            RealDataset::Taxis => 256,
            RealDataset::Greend => 256,
        }
    }
}

/// Configuration of a realistic clone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RealisticConfig {
    /// Which Table-4 dataset to clone.
    pub dataset: RealDataset,
    /// Cardinality and domain divisor (1 = paper-scale).
    pub scale: u64,
    /// RNG seed.
    pub seed: u64,
}

impl RealisticConfig {
    /// Clone `dataset` at its default laptop scale.
    pub fn new(dataset: RealDataset) -> Self {
        Self {
            dataset,
            scale: dataset.default_scale(),
            seed: 42,
        }
    }

    /// Overrides the scale divisor.
    pub fn with_scale(mut self, scale: u64) -> Self {
        assert!(scale >= 1);
        self.scale = scale;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Scaled cardinality.
    pub fn cardinality(&self) -> usize {
        let (n, ..) = self.dataset.table4();
        (n / self.scale).max(1) as usize
    }

    /// Scaled domain length.
    pub fn domain(&self) -> Time {
        let (_, d, ..) = self.dataset.table4();
        (d / self.scale).max(2)
    }

    /// Generates the clone. Ids are `0..cardinality`.
    pub fn generate(&self) -> Vec<Interval> {
        let (_, _, avg, max_dur) = self.dataset.table4();
        let domain = self.domain();
        let n = self.cardinality();
        let mean = (avg / self.scale as f64).max(1.0);
        let hi = (max_dur / self.scale).clamp(1, domain - 1);
        let model = DurationModel::with_mean(hi, mean);
        let mut rng = StdRng::seed_from_u64(self.seed ^ self.dataset as u64);
        (0..n)
            .map(|i| {
                let dur = model.sample(&mut rng).min(domain - 1);
                let span = dur - 1; // closed interval of `dur` values
                let st = rng.gen_range(0..domain - span);
                Interval::new(i as u64, st, st + span)
            })
            .collect()
    }
}

/// Duration distribution on `[1, hi]` matching a target mean.
///
/// Short-interval datasets (TAXIS, GREEND) fit a pure bounded Pareto. For
/// long-interval datasets (BOOKS, WEBKIT) the target mean exceeds what any
/// bounded Pareto on `[1, hi]` can reach (its `α → 0` limit is the
/// log-uniform mean `≈ hi / ln hi`), so we mix in a "near-maximal" uniform
/// component on `[hi/2, hi]` — modeling the loans never returned / files
/// never modified that dominate those datasets' tails — with the mixture
/// weight solved so the overall mean matches Table 4.
#[derive(Debug, Clone, Copy)]
enum DurationModel {
    Pure(BoundedPareto),
    Mixture {
        short: BoundedPareto,
        /// Probability of drawing from the long (uniform `[hi/2, hi]`)
        /// component.
        p_long: f64,
        hi: Time,
    },
}

impl DurationModel {
    fn with_mean(hi: Time, mean: f64) -> Self {
        if mean <= 1.0 || hi <= 1 {
            // durations collapse to the 1-unit floor at this scale
            // (TAXIS/GREEND clones at aggressive scales): point-like
            // intervals, exactly the "indexed at the bottom level" regime.
            return DurationModel::Pure(BoundedPareto::new(1, 1, 1.0));
        }
        if let Some(bp) = BoundedPareto::with_mean(1, hi, mean) {
            return DurationModel::Pure(bp);
        }
        let short = BoundedPareto::new(1, hi.max(2), 0.5);
        let m_short = short.mean();
        let m_long = 0.75 * hi as f64; // mean of uniform [hi/2, hi]
        let p_long = ((mean - m_short) / (m_long - m_short)).clamp(0.0, 1.0);
        DurationModel::Mixture { short, p_long, hi }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Time {
        match self {
            DurationModel::Pure(bp) => bp.sample(rng),
            DurationModel::Mixture { short, p_long, hi } => {
                if rng.gen::<f64>() < *p_long {
                    rng.gen_range(hi / 2..=*hi).max(1)
                } else {
                    short.sample(rng)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_statistics_match_table4_shape() {
        for ds in RealDataset::ALL {
            let cfg = RealisticConfig::new(ds).with_scale(ds.default_scale() * 8);
            let data = cfg.generate();
            assert_eq!(data.len(), cfg.cardinality(), "{}", ds.name());
            let domain = cfg.domain() as f64;
            let avg =
                data.iter().map(|s| s.duration() as f64 + 1.0).sum::<f64>() / data.len() as f64;
            let (_, d4, avg4, _) = ds.table4();
            let target_pct = avg4 / d4 as f64;
            let got_pct = avg / domain;
            let scaled_mean = avg4 / cfg.scale as f64;
            if scaled_mean >= 2.0 {
                // long-interval clones (BOOKS, WEBKIT): the mean-matching
                // solver must land within 35% of Table 4's duration share
                assert!(
                    (got_pct - target_pct).abs() / target_pct < 0.35,
                    "{}: duration {:.4}% vs paper {:.4}%",
                    ds.name(),
                    got_pct * 100.0,
                    target_pct * 100.0
                );
            } else {
                // short-interval clones (TAXIS, GREEND) hit the 1-unit
                // duration floor at test scale: just require "tiny"
                assert!(
                    got_pct < 0.005,
                    "{}: duration {:.4}% should stay point-like",
                    ds.name(),
                    got_pct * 100.0
                );
            }
            for s in &data {
                assert!(s.end < cfg.domain());
            }
        }
    }

    #[test]
    fn books_has_long_and_taxis_short_intervals() {
        let books = RealisticConfig::new(RealDataset::Books)
            .with_scale(128)
            .generate();
        let taxis = RealisticConfig::new(RealDataset::Taxis)
            .with_scale(4096)
            .generate();
        let frac = |d: &[Interval], dom: f64| {
            d.iter().map(|s| s.duration() as f64).sum::<f64>() / d.len() as f64 / dom
        };
        let b = frac(&books, (31_507_200 / 128) as f64);
        let t = frac(&taxis, (31_768_287 / 4096) as f64);
        assert!(b > 0.03, "BOOKS avg fraction {b}");
        assert!(t < 0.01, "TAXIS avg fraction {t}");
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let cfg = RealisticConfig::new(RealDataset::Books).with_scale(512);
        assert_eq!(cfg.generate(), cfg.generate());
        assert_ne!(cfg.generate(), cfg.with_seed(7).generate());
    }
}
