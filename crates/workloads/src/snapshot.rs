//! Deterministic binary snapshots of generated datasets.
//!
//! Generating the larger clones (millions of intervals) takes seconds;
//! snapshots let the harness and benches reuse a dataset across runs and
//! guarantee that two experiments see byte-identical inputs. The format is
//! a tiny self-describing little-endian layout built on [`bytes`]:
//!
//! ```text
//! magic  "HINTDS1\0"  (8 bytes)
//! count  u64
//! count * (id u64, st u64, end u64)
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use hint_core::Interval;
use std::fs;
use std::io;
use std::path::Path;

const MAGIC: &[u8; 8] = b"HINTDS1\0";

/// Serializes a dataset into the snapshot format.
pub fn encode(data: &[Interval]) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + data.len() * 24);
    buf.put_slice(MAGIC);
    buf.put_u64_le(data.len() as u64);
    for s in data {
        buf.put_u64_le(s.id);
        buf.put_u64_le(s.st);
        buf.put_u64_le(s.end);
    }
    buf.freeze()
}

/// Errors produced when decoding a snapshot.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The magic header is missing or wrong.
    BadMagic,
    /// The byte stream ended before `count` records were read.
    Truncated,
    /// A record violates the `st <= end` invariant.
    InvalidInterval {
        /// Index of the offending record.
        index: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a HINT dataset snapshot (bad magic)"),
            DecodeError::Truncated => write!(f, "snapshot truncated"),
            DecodeError::InvalidInterval { index } => {
                write!(f, "record {index} has st > end")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Deserializes a snapshot produced by [`encode`].
pub fn decode(mut bytes: Bytes) -> Result<Vec<Interval>, DecodeError> {
    if bytes.remaining() < MAGIC.len() + 8 {
        return Err(DecodeError::BadMagic);
    }
    let mut magic = [0u8; 8];
    bytes.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let count = bytes.get_u64_le() as usize;
    if bytes.remaining() < count.saturating_mul(24) {
        return Err(DecodeError::Truncated);
    }
    let mut out = Vec::with_capacity(count);
    for index in 0..count {
        let id = bytes.get_u64_le();
        let st = bytes.get_u64_le();
        let end = bytes.get_u64_le();
        if st > end {
            return Err(DecodeError::InvalidInterval { index });
        }
        out.push(Interval { id, st, end });
    }
    Ok(out)
}

/// Writes a snapshot to `path`.
pub fn save(data: &[Interval], path: &Path) -> io::Result<()> {
    fs::write(path, encode(data))
}

/// Loads a snapshot from `path`.
pub fn load(path: &Path) -> io::Result<Vec<Interval>> {
    let bytes = Bytes::from(fs::read(path)?);
    decode(bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticConfig;

    #[test]
    fn roundtrip() {
        let data = SyntheticConfig {
            cardinality: 5_000,
            ..Default::default()
        }
        .generate();
        let bytes = encode(&data);
        assert_eq!(decode(bytes).unwrap(), data);
    }

    #[test]
    fn roundtrip_empty() {
        let bytes = encode(&[]);
        assert_eq!(decode(bytes).unwrap(), Vec::<Interval>::new());
    }

    #[test]
    fn rejects_bad_magic() {
        let bytes = Bytes::from_static(b"NOTADATASET-----");
        assert_eq!(decode(bytes), Err(DecodeError::BadMagic));
    }

    #[test]
    fn rejects_truncation() {
        let data = SyntheticConfig {
            cardinality: 100,
            ..Default::default()
        }
        .generate();
        let full = encode(&data);
        let cut = full.slice(0..full.len() - 5);
        assert_eq!(decode(cut), Err(DecodeError::Truncated));
    }

    #[test]
    fn rejects_inverted_interval() {
        let mut raw = BytesMut::new();
        raw.put_slice(MAGIC);
        raw.put_u64_le(1);
        raw.put_u64_le(7); // id
        raw.put_u64_le(10); // st
        raw.put_u64_le(3); // end < st
        assert_eq!(
            decode(raw.freeze()),
            Err(DecodeError::InvalidInterval { index: 0 })
        );
    }

    #[test]
    fn file_roundtrip() {
        let data = SyntheticConfig {
            cardinality: 1_000,
            ..Default::default()
        }
        .generate();
        let dir = std::env::temp_dir().join("hint_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.bin");
        save(&data, &path).unwrap();
        assert_eq!(load(&path).unwrap(), data);
        std::fs::remove_file(&path).ok();
    }
}
