//! Data and query workload generators for the HINT reproduction (§5.1 of
//! the paper).
//!
//! * [`synthetic`] — the Table-5 generator: Zipfian interval lengths
//!   (`α`), Gaussian interval positions (`σ`), configurable domain and
//!   cardinality.
//! * [`realistic`] — statistical clones of the four real datasets of
//!   Table 4 (BOOKS, WEBKIT, TAXIS, GREEND), since the originals are not
//!   redistributable: same domain length, cardinality ratio and duration
//!   distribution shape, at a configurable scale.
//! * [`queries`] — range-query workloads: uniform positions (real-data
//!   experiments) or data-following positions (synthetic experiments),
//!   with the extent fixed to a percentage of the domain.
//! * [`dist`] — from-scratch Zipf (rejection-inversion) and Normal
//!   (Box–Muller) samplers, property-tested against analytic moments
//!   (`rand_distr` is outside this workspace's allowed dependency set).
//! * [`snapshot`] — deterministic binary dataset snapshots, so harness
//!   runs and benches can reuse byte-identical inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod queries;
pub mod realistic;
pub mod snapshot;
pub mod synthetic;

pub use queries::{QueryGen, QueryWorkload};
pub use realistic::{RealDataset, RealisticConfig};
pub use synthetic::SyntheticConfig;
