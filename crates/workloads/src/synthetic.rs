//! Synthetic datasets per Table 5 of the paper: Zipfian interval lengths
//! and normally-distributed interval positions.
//!
//! > "The lengths of the intervals were generated using the
//! > `random.zipf(α)` function … The positions of the middle points of the
//! > intervals are generated from a normal distribution centered at the
//! > middle point `μ` of the domain" (§5.1).

use crate::dist::{Normal, Zipf};
use hint_core::{Interval, Time};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of a synthetic dataset (Table 5; defaults in bold there).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Domain length (default 128M in the paper).
    pub domain: Time,
    /// Number of intervals (default 100M in the paper; scale down for
    /// laptop runs).
    pub cardinality: usize,
    /// Zipf exponent for interval lengths (default 1.2).
    pub alpha: f64,
    /// Standard deviation of interval middle-point positions (default 1M).
    pub sigma: f64,
    /// RNG seed (the paper's generator is seeded per run; we default 42).
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        // the paper's defaults scaled 1/100 for laptop-friendly runs:
        // domain 128M -> 1.28M, cardinality 100M -> 1M, sigma 1M -> 10K
        Self {
            domain: 1_280_000,
            cardinality: 1_000_000,
            alpha: 1.2,
            sigma: 10_000.0,
            seed: 42,
        }
    }
}

impl SyntheticConfig {
    /// The paper's exact defaults (needs several GB of RAM).
    pub fn paper_defaults() -> Self {
        Self {
            domain: 128_000_000,
            cardinality: 100_000_000,
            alpha: 1.2,
            sigma: 1_000_000.0,
            seed: 42,
        }
    }

    /// Generates the dataset. Interval ids are `0..cardinality`.
    ///
    /// # Panics
    /// Panics if `domain == 0`, `cardinality == 0`, or `alpha <= 1`.
    pub fn generate(&self) -> Vec<Interval> {
        assert!(self.domain > 0 && self.cardinality > 0);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let zipf = Zipf::new(self.alpha);
        let mut normal = Normal::new(self.domain as f64 / 2.0, self.sigma);
        let max = self.domain - 1;
        (0..self.cardinality)
            .map(|i| {
                let len = zipf.sample(&mut rng).min(self.domain);
                let mid = normal.sample(&mut rng).clamp(0.0, max as f64) as Time;
                let half = (len - 1) / 2;
                let st = mid.saturating_sub(half);
                let end = (st + len - 1).min(max);
                Interval::new(i as u64, st.min(end), end)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_domain_bounds() {
        let cfg = SyntheticConfig {
            domain: 10_000,
            cardinality: 5_000,
            ..Default::default()
        };
        let data = cfg.generate();
        assert_eq!(data.len(), 5_000);
        for s in &data {
            assert!(s.end < 10_000);
            assert!(s.st <= s.end);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = SyntheticConfig {
            cardinality: 1_000,
            ..Default::default()
        };
        assert_eq!(cfg.generate(), cfg.generate());
        let other = SyntheticConfig { seed: 7, ..cfg };
        assert_ne!(cfg.generate(), other.generate());
    }

    #[test]
    fn larger_alpha_means_shorter_intervals() {
        let base = SyntheticConfig {
            cardinality: 20_000,
            ..Default::default()
        };
        let short = SyntheticConfig { alpha: 1.8, ..base }.generate();
        let long = SyntheticConfig {
            alpha: 1.01,
            ..base
        }
        .generate();
        let avg =
            |d: &[Interval]| d.iter().map(|s| s.duration() as f64).sum::<f64>() / d.len() as f64;
        assert!(
            avg(&long) > 10.0 * avg(&short),
            "alpha=1.01 avg {} vs alpha=1.8 avg {}",
            avg(&long),
            avg(&short)
        );
    }

    #[test]
    fn larger_sigma_spreads_positions() {
        let base = SyntheticConfig {
            cardinality: 20_000,
            domain: 1_000_000,
            ..Default::default()
        };
        let narrow = SyntheticConfig {
            sigma: 1_000.0,
            ..base
        }
        .generate();
        let wide = SyntheticConfig {
            sigma: 100_000.0,
            ..base
        }
        .generate();
        let spread = |d: &[Interval]| {
            let mids: Vec<f64> = d.iter().map(|s| (s.st + s.end) as f64 / 2.0).collect();
            let mean = mids.iter().sum::<f64>() / mids.len() as f64;
            (mids.iter().map(|m| (m - mean).powi(2)).sum::<f64>() / mids.len() as f64).sqrt()
        };
        assert!(spread(&wide) > 10.0 * spread(&narrow));
    }
}
