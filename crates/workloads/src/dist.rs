//! From-scratch probability distributions used by the workload generators.
//!
//! The paper generates synthetic interval lengths with numpy's
//! `random.zipf(α)` and positions with `random.normalvariate(μ, σ)`
//! (Table 5). We implement both samplers directly on top of a [`rand`]
//! RNG:
//!
//! * [`Zipf`]: the rejection-inversion sampler for the (unbounded) zeta
//!   distribution `p(x) ∝ x^{-α}`, `x ∈ {1, 2, ...}` — the same algorithm
//!   numpy uses (Devroye's transformed-rejection for the zeta law).
//! * [`Normal`]: Box–Muller transform (cached second variate).
//! * [`BoundedPareto`]: power-law durations on `[lo, hi]` with a numeric
//!   mean-matching solver — used by the realistic dataset clones to hit a
//!   target mean duration with a heavy tail.

use rand::Rng;

/// Unbounded Zipf (zeta) sampler over `{1, 2, 3, ...}` with exponent
/// `alpha > 1`, via transformed rejection (as in numpy's `random.zipf`).
#[derive(Debug, Clone, Copy)]
pub struct Zipf {
    alpha: f64,
    am1: f64,
    b: f64,
}

impl Zipf {
    /// Creates a sampler with exponent `alpha`.
    ///
    /// # Panics
    /// Panics unless `alpha > 1` (the zeta law is only normalizable then).
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 1.0, "zipf exponent must be > 1 (got {alpha})");
        let am1 = alpha - 1.0;
        Self {
            alpha,
            am1,
            b: 2f64.powf(am1),
        }
    }

    /// The exponent `alpha`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Draws one sample. The returned value is capped at `u64::MAX / 4` to
    /// keep downstream arithmetic overflow-free (astronomically rare for
    /// any practical `alpha`).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        const CAP: f64 = (u64::MAX / 4) as f64;
        loop {
            let u: f64 = 1.0 - rng.gen::<f64>(); // u in (0, 1]
            let v: f64 = rng.gen();
            let x = u.powf(-1.0 / self.am1).floor();
            if !(1.0..=CAP).contains(&x) {
                continue;
            }
            let t = (1.0 + 1.0 / x).powf(self.am1);
            if v * x * (t - 1.0) / (self.b - 1.0) <= t / self.b {
                return x as u64;
            }
        }
    }
}

/// Gaussian sampler (Box–Muller with a cached spare variate).
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mu: f64,
    sigma: f64,
    spare: Option<f64>,
}

impl Normal {
    /// Creates a sampler with mean `mu` and standard deviation `sigma`.
    ///
    /// # Panics
    /// Panics if `sigma < 0` or either parameter is not finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite() && sigma.is_finite() && sigma >= 0.0);
        Self {
            mu,
            sigma,
            spare: None,
        }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return self.mu + self.sigma * z;
        }
        // Box–Muller: two uniforms -> two independent standard normals
        let u1: f64 = loop {
            let u: f64 = rng.gen();
            if u > 0.0 {
                break u;
            }
        };
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        self.mu + self.sigma * r * theta.cos()
    }
}

/// Bounded Pareto sampler on `[lo, hi]` with shape `alpha`, sampled by
/// inverse CDF. Used for realistic duration distributions: heavy tail,
/// hard bounds, and an analytically known mean that [`BoundedPareto::
/// with_mean`] inverts numerically.
#[derive(Debug, Clone, Copy)]
pub struct BoundedPareto {
    lo: f64,
    hi: f64,
    alpha: f64,
}

impl BoundedPareto {
    /// Creates a sampler with explicit shape.
    ///
    /// # Panics
    /// Panics unless `0 < lo <= hi` and `alpha > 0`.
    pub fn new(lo: u64, hi: u64, alpha: f64) -> Self {
        assert!(lo > 0 && lo <= hi && alpha > 0.0);
        Self {
            lo: lo as f64,
            hi: hi as f64,
            alpha,
        }
    }

    /// Finds the shape `alpha` whose bounded-Pareto mean on `[lo, hi]`
    /// equals `mean`, by bisection. Returns `None` if `mean` is outside
    /// the achievable range (close to `lo` … close to the unbounded-mean
    /// limit).
    pub fn with_mean(lo: u64, hi: u64, mean: f64) -> Option<Self> {
        if lo == hi {
            return Some(Self::new(lo, hi, 1.0));
        }
        let lo_f = lo as f64;
        let hi_f = hi as f64;
        if mean <= lo_f || mean >= hi_f {
            return None;
        }
        // mean(alpha) is monotone decreasing in alpha
        let (mut a_lo, mut a_hi) = (1e-6, 50.0);
        let m_at = |a: f64| {
            Self {
                lo: lo_f,
                hi: hi_f,
                alpha: a,
            }
            .mean()
        };
        if mean > m_at(a_lo) || mean < m_at(a_hi) {
            return None;
        }
        for _ in 0..200 {
            let mid = 0.5 * (a_lo + a_hi);
            if m_at(mid) > mean {
                a_lo = mid;
            } else {
                a_hi = mid;
            }
        }
        Some(Self {
            lo: lo_f,
            hi: hi_f,
            alpha: 0.5 * (a_lo + a_hi),
        })
    }

    /// Analytic mean of the distribution.
    pub fn mean(&self) -> f64 {
        let (l, h, a) = (self.lo, self.hi, self.alpha);
        if (a - 1.0).abs() < 1e-9 {
            // alpha = 1: E = ln(h/l) * l*h/(h-l) ... derive via limit
            let c = 1.0 / (1.0 / l - 1.0 / h);
            return c * (h / l).ln();
        }
        let num = l.powf(a) / (1.0 - (l / h).powf(a));
        num * a / (a - 1.0) * (1.0 / l.powf(a - 1.0) - 1.0 / h.powf(a - 1.0))
    }

    /// Draws one sample (inverse CDF).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen::<f64>().clamp(1e-15, 1.0 - 1e-15);
        let (l, h, a) = (self.lo, self.hi, self.alpha);
        let ha = h.powf(a);
        let la = l.powf(a);
        let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / a);
        (x as u64).clamp(l as u64, h as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_large_alpha_is_mostly_ones() {
        let mut rng = StdRng::seed_from_u64(1);
        let z = Zipf::new(4.0);
        let n = 20_000;
        let ones = (0..n).filter(|_| z.sample(&mut rng) == 1).count();
        // P(X=1) = 1/zeta(4) ≈ 0.9239
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.9239).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn zipf_small_alpha_has_heavy_tail() {
        let mut rng = StdRng::seed_from_u64(2);
        let z = Zipf::new(1.1);
        let n = 20_000;
        let big = (0..n).filter(|_| z.sample(&mut rng) > 1000).count();
        // P(X > 1000) is non-negligible for alpha=1.1 (~ 0.05)
        assert!(big > n / 100, "only {big} samples above 1000");
    }

    #[test]
    fn zipf_pmf_ratio_matches_power_law() {
        let mut rng = StdRng::seed_from_u64(3);
        let z = Zipf::new(2.0);
        let n = 200_000;
        let mut c1 = 0;
        let mut c2 = 0;
        for _ in 0..n {
            match z.sample(&mut rng) {
                1 => c1 += 1,
                2 => c2 += 1,
                _ => {}
            }
        }
        // p(1)/p(2) = 2^alpha = 4
        let ratio = c1 as f64 / c2 as f64;
        assert!((ratio - 4.0).abs() < 0.4, "ratio = {ratio}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut nd = Normal::new(100.0, 15.0);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| nd.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 0.5, "mean = {mean}");
        assert!((var.sqrt() - 15.0).abs() < 0.5, "sd = {}", var.sqrt());
    }

    #[test]
    fn bounded_pareto_respects_bounds_and_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        let bp = BoundedPareto::with_mean(1, 1_000_000, 5_000.0).expect("solvable");
        let n = 200_000;
        let mut sum = 0u64;
        for _ in 0..n {
            let x = bp.sample(&mut rng);
            assert!((1..=1_000_000).contains(&x));
            sum += x;
        }
        let mean = sum as f64 / n as f64;
        assert!(
            (mean - 5_000.0).abs() / 5_000.0 < 0.15,
            "empirical mean {mean} vs target 5000"
        );
    }

    #[test]
    fn bounded_pareto_rejects_impossible_means() {
        assert!(BoundedPareto::with_mean(10, 100, 5.0).is_none());
        assert!(BoundedPareto::with_mean(10, 100, 200.0).is_none());
        assert!(BoundedPareto::with_mean(10, 10, 10.0).is_some());
    }

    #[test]
    fn samplers_are_deterministic_under_seed() {
        let z = Zipf::new(1.5);
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
