//! Shared differential-test harness for the workspace.
//!
//! Every index in the workspace is validated the same way: build it next
//! to a [`ScanOracle`] over the same data and check that both answer
//! every query identically, in every access mode. Before this crate, the
//! oracle-comparison loop was duplicated across the workspace test files
//! and the per-crate proptest suites; they all now share:
//!
//! * [`assert_same_results`] — the differential check: enumerate (sorted,
//!   duplicate-free, tombstone-free), count and exists against the
//!   oracle, for a batch of queries;
//! * [`assert_indexes_agree`] — index-vs-index differential (e.g. a
//!   [`ShardedIndex`](hint_core::ShardedIndex) against its unsharded
//!   twin), covering solo sinks, batched execution, count/exists and
//!   first-`k`;
//! * [`intervals`] / [`queries`] — the standard proptest strategies for
//!   interval collections and range queries;
//! * [`fuzz`] — deterministic seeded workload generation, so any RNG
//!   seed that ever produced a failure can be replayed forever as a
//!   named regression test (see `tests/regressions.rs`);
//! * [`shard_counts`] — the shard-count sweep for sharded differential
//!   tests, overridable via the `HINT_TEST_SHARDS` environment variable
//!   (comma-separated, e.g. `HINT_TEST_SHARDS=1,4`) so CI can pin it.
//!
//! The assertion helpers return `Result<(), TestCaseError>` so they
//! compose with `?` inside [`proptest::proptest!`] bodies, and panic via
//! [`expect_same_results`] for plain `#[test]`s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hint_core::{
    CollectSink, FirstK, Interval, IntervalId, IntervalIndex, QuerySink, RangeQuery, ScanOracle,
    TOMBSTONE,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Sorts a result vector (enumeration order is index-specific; result
/// *sets* are what differential tests compare).
pub fn sorted(mut v: Vec<IntervalId>) -> Vec<IntervalId> {
    v.sort_unstable();
    v
}

/// Strategy: a collection of `1..max_count` intervals with endpoints
/// drawn from `[0, max_val)`, ids `0..len`.
pub fn intervals_up_to(max_val: u64, max_count: usize) -> impl Strategy<Value = Vec<Interval>> {
    prop::collection::vec((0..max_val, 0..max_val), 1..max_count).prop_map(|pairs| {
        pairs
            .into_iter()
            .enumerate()
            .map(|(i, (a, b))| Interval::new(i as u64, a.min(b), a.max(b)))
            .collect()
    })
}

/// The workspace-standard interval collection strategy (up to 120
/// intervals over `[0, max_val)`).
pub fn intervals(max_val: u64) -> impl Strategy<Value = Vec<Interval>> {
    intervals_up_to(max_val, 120)
}

/// Strategy: one range query with endpoints drawn from `[0, max_val)`.
pub fn query(max_val: u64) -> impl Strategy<Value = RangeQuery> {
    (0..max_val, 0..max_val).prop_map(|(a, b)| RangeQuery::new(a.min(b), a.max(b)))
}

/// Strategy: a batch of `1..max_count` range queries over `[0, max_val)`.
pub fn queries(max_val: u64, max_count: usize) -> impl Strategy<Value = Vec<RangeQuery>> {
    prop::collection::vec((0..max_val, 0..max_val), 1..max_count).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(a, b)| RangeQuery::new(a.min(b), a.max(b)))
            .collect()
    })
}

/// The enumeration an index reports for `q`, via the sink path.
fn enumerate<I: IntervalIndex + ?Sized>(index: &I, q: RangeQuery) -> Vec<IntervalId> {
    let mut out = Vec::new();
    index.query_sink(q, &mut out);
    out
}

/// The differential check, named variant: for every query, `index` must
/// report exactly the oracle's result set (duplicate-free and
/// tombstone-free), the same count, and the same existence answer.
/// `name` labels failures when one test sweeps several index variants.
pub fn assert_same_results_named<I: IntervalIndex + ?Sized>(
    name: &str,
    index: &I,
    oracle: &ScanOracle,
    queries: &[RangeQuery],
) -> Result<(), TestCaseError> {
    for &q in queries {
        let got = enumerate(index, q);
        prop_assert!(
            !got.contains(&TOMBSTONE),
            "{name}: emitted a tombstone on {q:?}"
        );
        let n = got.len();
        let got = sorted(got);
        let mut deduped = got.clone();
        deduped.dedup();
        prop_assert_eq!(n, deduped.len(), "{} emitted duplicates on {:?}", name, q);
        let want = oracle.query_sorted(q);
        prop_assert_eq!(&got, &want, "{} enumerate vs oracle on {:?}", name, q);
        prop_assert_eq!(
            index.count(q),
            want.len(),
            "{} count vs oracle on {:?}",
            name,
            q
        );
        prop_assert_eq!(
            index.exists(q),
            !want.is_empty(),
            "{} exists vs oracle on {:?}",
            name,
            q
        );
    }
    Ok(())
}

/// The differential check: `index` must agree with `oracle` on every
/// query, in every access mode (enumerate / count / exists). See
/// [`assert_same_results_named`] to label the index variant.
pub fn assert_same_results<I: IntervalIndex + ?Sized>(
    index: &I,
    oracle: &ScanOracle,
    queries: &[RangeQuery],
) -> Result<(), TestCaseError> {
    assert_same_results_named("index", index, oracle, queries)
}

/// Panicking wrapper around [`assert_same_results_named`] for plain
/// `#[test]`s (outside `proptest!` bodies).
pub fn expect_same_results<I: IntervalIndex + ?Sized>(
    name: &str,
    index: &I,
    oracle: &ScanOracle,
    queries: &[RangeQuery],
) {
    if let Err(e) = assert_same_results_named(name, index, oracle, queries) {
        panic!("differential check failed: {e:?}");
    }
}

/// Index-vs-index differential: `a` and `b` must report the same result
/// *sets*, counts and existence answers for every query, both solo and
/// through `query_batch`, and their first-`k` answers must be valid
/// prefixes of the shared result set (`min(k, |result|)` real results,
/// never more than `k`). This is the bit-identical-results check behind
/// the sharded-vs-unsharded property tests, where emission *order* is
/// allowed to differ but result sets are not.
pub fn assert_indexes_agree<A, B>(
    name: &str,
    a: &A,
    b: &B,
    queries: &[RangeQuery],
) -> Result<(), TestCaseError>
where
    A: IntervalIndex + ?Sized,
    B: IntervalIndex + ?Sized,
{
    // the shared truth: both sides' solo enumerations as sorted sets
    let mut want_sets = Vec::with_capacity(queries.len());
    for &q in queries {
        let wa = sorted(enumerate(a, q));
        let wb = sorted(enumerate(b, q));
        prop_assert_eq!(&wa, &wb, "{} solo enumerate on {:?}", name, q);
        want_sets.push(wa);
    }
    check_modes(name, "a", a, queries, &want_sets)?;
    check_modes(name, "b", b, queries, &want_sets)
}

/// Checks one index's count / exists / first-`k` / batched answers
/// against the per-query result sets established by the solo comparison.
fn check_modes<I: IntervalIndex + ?Sized>(
    name: &str,
    side: &str,
    idx: &I,
    queries: &[RangeQuery],
    want_sets: &[Vec<IntervalId>],
) -> Result<(), TestCaseError> {
    for (&q, want) in queries.iter().zip(want_sets) {
        prop_assert_eq!(
            idx.count(q),
            want.len(),
            "{} {}.count on {:?}",
            name,
            side,
            q
        );
        prop_assert_eq!(
            idx.exists(q),
            !want.is_empty(),
            "{} {}.exists on {:?}",
            name,
            side,
            q
        );
        for k in [0, 1, 3] {
            let mut sink = FirstK::new(k);
            idx.query_sink(q, &mut sink);
            prop_assert_eq!(
                sink.len(),
                k.min(want.len()),
                "{} {}.first_k({}) size on {:?}",
                name,
                side,
                k,
                q
            );
            for id in sink.ids() {
                prop_assert!(
                    want.binary_search(id).is_ok(),
                    "{name}: {side}.first_k({k}) emitted non-result {id} on {q:?}"
                );
            }
        }
    }
    // batched execution must match the solo result sets
    let mut bufs: Vec<CollectSink> = queries.iter().map(|_| CollectSink::new()).collect();
    {
        let mut sinks: Vec<&mut dyn QuerySink> =
            bufs.iter_mut().map(|b| b as &mut dyn QuerySink).collect();
        idx.query_batch(queries, &mut sinks);
    }
    for ((buf, want), q) in bufs.into_iter().zip(want_sets).zip(queries) {
        prop_assert_eq!(
            &sorted(buf.into_vec()),
            want,
            "{} {}.query_batch on {:?}",
            name,
            side,
            q
        );
    }
    Ok(())
}

/// The shard counts the sharded differential tests sweep. Defaults to
/// `[1, 2, 3, 8]`; CI pins it via `HINT_TEST_SHARDS` (comma-separated).
pub fn shard_counts() -> Vec<usize> {
    match std::env::var("HINT_TEST_SHARDS") {
        Ok(raw) => {
            let counts: Vec<usize> = raw
                .split(',')
                .filter_map(|tok| tok.trim().parse().ok())
                .filter(|&k| k >= 1)
                .collect();
            assert!(
                !counts.is_empty(),
                "HINT_TEST_SHARDS={raw:?} contains no valid shard counts"
            );
            counts
        }
        Err(_) => vec![1, 2, 3, 8],
    }
}

pub mod lifecycle {
    //! The seeded stateful lifecycle driver shared by `tests/lifecycle.rs`
    //! (the fuzz seed matrix) and `tests/regressions.rs` (failing seeds,
    //! replayed forever): a long random interleaving of insert / delete /
    //! seal / re-tune / query (solo, batched, merged, bounded sinks)
    //! driven through a pooled [`Session`] against the `ScanOracle` twin,
    //! across the [`super::shard_counts`] sweep.

    use super::{expect_same_results, fuzz, shard_counts};
    use hint_core::{
        query_epoch_pins, CountSink, Domain, EpochPin, ExistsSink, FirstK, HandleSink, HintMSubs,
        Interval, IntervalId, IntervalIndex, QuerySink, RangeQuery, RetunePolicy, ScanOracle,
        Session, ShardedIndex, SubsConfig,
    };

    /// A point-in-time pair: snapshot bytes and the live set they
    /// captured, for rolling the oracle twin back on a Restore step.
    type SnapPoint = (Vec<u8>, Vec<Interval>);

    /// Domain of the generated workloads.
    pub const DOM: u64 = 4_096;

    fn build_sharded(data: &[Interval], k: usize) -> ShardedIndex<HintMSubs> {
        ShardedIndex::build_with_domain(data, 0, DOM - 1, k, |slice, lo, hi| {
            HintMSubs::build_with_domain(
                slice,
                Domain::new(lo, hi, 9),
                SubsConfig::update_friendly(),
            )
        })
    }

    /// Sorted result set of one solo query through the session.
    fn session_sorted(session: &Session<HintMSubs>, q: RangeQuery) -> Vec<IntervalId> {
        let mut got: Vec<IntervalId> = Vec::new();
        session.query_sink(q, &mut got);
        got.sort_unstable();
        got
    }

    /// Replays one lifecycle seed: 60 random steps, each differentially
    /// checked, with re-tuning enabled on every reseal, then a final
    /// reseal and the full differential battery. Steps include in-memory
    /// snapshot/restore, so save interleaves with insert / delete /
    /// seal / re-tune and restore rolls both the engine and the oracle
    /// twin back to the snapshot point. Panics on divergence.
    pub fn replay(seed: u64) {
        let w = fuzz::workload(seed, DOM, 140, 16, 0);
        for k in shard_counts() {
            let mut session = Session::with_retune(build_sharded(&w.data, k), RetunePolicy::OnSeal);
            let mut oracle = ScanOracle::new(&w.data);
            let mut live = w.data.clone();
            let mut rng = fuzz::Rng::new(seed ^ 0x11f3_c1c1);
            let mut next_id = 500_000u64;
            let mut snap: Option<SnapPoint> = None;
            // when the pool is replicated (HINT_READ_REPLICAS >= 2, as
            // in the CI replica sweep), pin the published epochs
            // mid-run and hold them across every later step: the pins'
            // answers at the end must still match the oracle state at
            // pin time — drained epochs never see later mutations
            type PinProbe = (Vec<EpochPin<HintMSubs>>, Vec<(RangeQuery, Vec<IntervalId>)>);
            let mut pinned: Option<PinProbe> = None;
            for step in 0..60 {
                let ctx = |what: &str| format!("seed {seed:#x} K={k} step {step}: {what}");
                if step == 20 {
                    if let Some(pins) = session.pool().pin_epochs() {
                        let probes = w
                            .queries
                            .iter()
                            .take(6)
                            .map(|&q| (q, oracle.query_sorted(q)))
                            .collect();
                        pinned = Some((pins, probes));
                    }
                }
                match rng.below(15) {
                    0..=2 => {
                        // insert (sometimes deliberately out of domain)
                        let st = rng.below(DOM + 64);
                        let end = (st + rng.below(DOM / 8 + 1)).min(DOM + 128);
                        let s = Interval::new(next_id, st, end);
                        next_id += 1;
                        let r = session.try_insert(s);
                        if st < DOM && end < DOM {
                            assert!(r.is_ok(), "{}", ctx("in-domain insert refused"));
                            oracle.insert(s);
                            live.push(s);
                        } else {
                            assert!(r.is_err(), "{}", ctx("out-of-domain insert accepted"));
                        }
                    }
                    3..=4 => {
                        // delete a live victim, or an absent interval
                        if !live.is_empty() && rng.below(8) != 0 {
                            let victim = live.swap_remove(rng.below(live.len() as u64) as usize);
                            assert_eq!(
                                session.delete(&victim),
                                oracle.delete(victim.id),
                                "{}",
                                ctx("delete divergence")
                            );
                        } else {
                            assert!(
                                !session.delete(&Interval::new(987_654_321, 1, 2)),
                                "{}",
                                ctx("absent delete reported found")
                            );
                        }
                    }
                    5 => {
                        // reseal: folds overlays in and may re-tune
                        // dirty shards against the mix observed so far
                        let was_dirty = session.is_dirty();
                        assert_eq!(session.seal_if_dirty(), was_dirty, "{}", ctx("seal"));
                    }
                    6..=7 => {
                        let (a, b) = (rng.below(DOM), rng.below(DOM));
                        let q = RangeQuery::new(a.min(b), a.max(b));
                        assert_eq!(
                            session_sorted(&session, q),
                            oracle.query_sorted(q),
                            "{}",
                            ctx("solo query")
                        );
                    }
                    8 => {
                        // merged batch
                        let qs: Vec<RangeQuery> = (0..8)
                            .map(|_| {
                                let (a, b) = (rng.below(DOM), rng.below(DOM));
                                RangeQuery::new(a.min(b), a.max(b))
                            })
                            .collect();
                        let mut merged: Vec<Vec<IntervalId>> =
                            qs.iter().map(|_| Vec::new()).collect();
                        session.query_batch_merge(&qs, &mut merged);
                        for (q, got) in qs.iter().zip(merged) {
                            let mut got = got;
                            got.sort_unstable();
                            assert_eq!(got, oracle.query_sorted(*q), "{}", ctx("merged batch"));
                        }
                    }
                    9 => {
                        // dyn batch through the pool's collect path
                        let qs: Vec<RangeQuery> = (0..6)
                            .map(|_| {
                                let (a, b) = (rng.below(DOM), rng.below(DOM));
                                RangeQuery::new(a.min(b), a.max(b))
                            })
                            .collect();
                        let mut bufs: Vec<Vec<IntervalId>> =
                            qs.iter().map(|_| Vec::new()).collect();
                        {
                            let mut sinks: Vec<&mut dyn QuerySink> =
                                bufs.iter_mut().map(|b| b as &mut dyn QuerySink).collect();
                            session.pool().query_batch(&qs, &mut sinks);
                        }
                        for (q, got) in qs.iter().zip(bufs) {
                            let mut got = got;
                            got.sort_unstable();
                            assert_eq!(got, oracle.query_sorted(*q), "{}", ctx("dyn batch"));
                        }
                    }
                    10 => {
                        // bounded sinks: first-k is a valid prefix,
                        // count and exists are exact
                        let (a, b) = (rng.below(DOM), rng.below(DOM));
                        let q = RangeQuery::new(a.min(b), a.max(b));
                        let want = oracle.query_sorted(q);
                        let kk = rng.below(5) as usize;
                        let mut sinks = vec![FirstK::new(kk)];
                        session.query_batch_merge(&[q], &mut sinks);
                        assert_eq!(
                            sinks[0].len(),
                            kk.min(want.len()),
                            "{}",
                            ctx("first-k size")
                        );
                        for id in sinks[0].ids() {
                            assert!(
                                want.binary_search(id).is_ok(),
                                "{}",
                                ctx("first-k emitted a non-result")
                            );
                        }
                        let mut counts = vec![CountSink::new()];
                        session.query_batch_merge(&[q], &mut counts);
                        assert_eq!(counts[0].count(), want.len(), "{}", ctx("count"));
                        let mut exists = vec![ExistsSink::new()];
                        session.query_batch_merge(&[q], &mut exists);
                        assert_eq!(exists[0].found(), !want.is_empty(), "{}", ctx("exists"));
                    }
                    11 => {
                        // zero-copy handles across a reseal epoch:
                        // slice handles acquired from the sealed arenas
                        // must materialize the snapshot they were taken
                        // from even after a write lands and the index
                        // reseals underneath them (the Arc'd columns
                        // outlive their superseding arena)
                        let qs: Vec<RangeQuery> = (0..6)
                            .map(|_| {
                                let (a, b) = (rng.below(DOM), rng.below(DOM));
                                RangeQuery::new(a.min(b), a.max(b))
                            })
                            .collect();
                        let want: Vec<Vec<IntervalId>> =
                            qs.iter().map(|&q| oracle.query_sorted(q)).collect();
                        let mut handles: Vec<HandleSink> =
                            qs.iter().map(|_| HandleSink::new()).collect();
                        session.query_batch_merge(&qs, &mut handles);
                        // next epoch: dirty the index, then reseal while
                        // the handles are still unmaterialized
                        let st = rng.below(DOM - 8);
                        let s = Interval::new(next_id, st, st + 7);
                        next_id += 1;
                        session.try_insert(s).unwrap();
                        oracle.insert(s);
                        live.push(s);
                        assert!(session.seal_if_dirty(), "{}", ctx("epoch reseal"));
                        for (sink, want) in handles.into_iter().zip(&want) {
                            let mut got = sink.into_vec();
                            got.sort_unstable();
                            assert_eq!(
                                &got,
                                want,
                                "{}",
                                ctx("handle diverged across the reseal epoch")
                            );
                        }
                    }
                    12 => {
                        // stab burst: skews the observed mix toward
                        // extent 0 so later reseals exercise the re-tuner
                        for _ in 0..4 {
                            let t = rng.below(DOM);
                            let q = RangeQuery::stab(t);
                            assert_eq!(
                                session_sorted(&session, q),
                                oracle.query_sorted(q),
                                "{}",
                                ctx("stab")
                            );
                        }
                    }
                    13 => {
                        // snapshot: a write barrier — the bytes must
                        // capture exactly the live set at this step
                        let bytes = session
                            .snapshot_bytes()
                            .unwrap_or_else(|e| panic!("{}", ctx(&format!("snapshot: {e}"))));
                        assert!(!session.is_dirty(), "{}", ctx("snapshot left dirt"));
                        snap = Some((bytes, live.clone()));
                    }
                    _ => {
                        // restore: roll the engine back to the last
                        // snapshot point; the oracle twin rolls back too
                        if let Some((bytes, at)) = &snap {
                            session = Session::restore_bytes(bytes)
                                .unwrap_or_else(|e| panic!("{}", ctx(&format!("restore: {e}"))));
                            live = at.clone();
                            oracle = ScanOracle::new(&live);
                            assert!(!session.is_dirty(), "{}", ctx("restored dirty"));
                            let q = RangeQuery::new(0, DOM - 1);
                            assert_eq!(
                                session_sorted(&session, q),
                                oracle.query_sorted(q),
                                "{}",
                                ctx("post-restore sweep")
                            );
                        }
                    }
                }
            }
            // the epochs pinned mid-run drained untouched: 40 steps of
            // inserts, deletes, reseals, re-tunes and restores later,
            // they still answer from their point-in-time image
            if let Some((pins, probes)) = pinned {
                for (q, want) in probes {
                    let mut got: Vec<IntervalId> = Vec::new();
                    query_epoch_pins(&pins, q, &mut got);
                    got.sort_unstable();
                    assert_eq!(
                        got, want,
                        "seed {seed:#x} K={k}: pinned epoch drifted on {q:?}"
                    );
                }
            }
            // final reseal (+ possible re-tunes), then the full
            // differential battery over the workload's query set
            session.seal_if_dirty();
            expect_same_results(
                &format!("lifecycle seed {seed:#x} K={k}"),
                session.pool(),
                &oracle,
                &w.queries,
            );
        }
    }
}

pub mod fuzz {
    //! Deterministic seeded workload generation for regression replay.
    //!
    //! Proptest's shrunk failures are point-in-time; a regression corpus
    //! must replay *forever*. Everything here is a pure function of the
    //! seed (SplitMix64, no environment influence), so a failing seed
    //! copied into `tests/regressions.rs` reproduces its workload
    //! bit-for-bit on every future run.

    use hint_core::{Interval, RangeQuery, Time};

    /// SplitMix64 — tiny, seedable, stable across platforms.
    #[derive(Debug, Clone)]
    pub struct Rng(u64);

    impl Rng {
        /// Creates a generator for `seed`.
        pub fn new(seed: u64) -> Self {
            Self(seed)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)` (`0` when `bound == 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                return 0;
            }
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// One insert (`true`) or delete (`false`) position in an update
    /// interleaving; see [`Workload::ops`].
    pub type Op = (bool, Time, Time);

    /// A fully deterministic differential workload.
    #[derive(Debug, Clone)]
    pub struct Workload {
        /// Domain upper bound (endpoints are `< dom`).
        pub dom: u64,
        /// The initial interval collection (ids `0..n`).
        pub data: Vec<Interval>,
        /// Query batch.
        pub queries: Vec<RangeQuery>,
        /// Update interleaving: `(is_insert, position, length)` triples,
        /// interpreted by the replay loop (deletes pick a live victim by
        /// `position`).
        pub ops: Vec<Op>,
    }

    /// Generates the standard workload for `seed`: `n` intervals and
    /// `nq` queries over `[0, dom)`, plus `nops` update operations.
    pub fn workload(seed: u64, dom: u64, n: usize, nq: usize, nops: usize) -> Workload {
        assert!(dom >= 2, "degenerate fuzz domain");
        let mut rng = Rng::new(seed);
        let data = (0..n)
            .map(|i| {
                let (a, b) = (rng.below(dom), rng.below(dom));
                Interval::new(i as u64, a.min(b), a.max(b))
            })
            .collect();
        let queries = (0..nq)
            .map(|_| {
                let (a, b) = (rng.below(dom), rng.below(dom));
                RangeQuery::new(a.min(b), a.max(b))
            })
            .collect();
        let ops = (0..nops)
            .map(|_| {
                (
                    rng.next_u64() & 1 == 1,
                    rng.below(dom),
                    rng.below(dom / 8 + 1),
                )
            })
            .collect();
        Workload {
            dom,
            data,
            queries,
            ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hint_core::{Hint, HintMSubs, SubsConfig};

    fn sample_data() -> Vec<Interval> {
        (0..300)
            .map(|i| {
                let st = (i * 17) % 2_000;
                Interval::new(i, st, (st + i % 40).min(2_047))
            })
            .collect()
    }

    #[test]
    fn same_results_accepts_an_exact_index() {
        let data = sample_data();
        let oracle = ScanOracle::new(&data);
        let idx = Hint::build(&data, 9);
        let qs: Vec<RangeQuery> = (0..40)
            .map(|i| RangeQuery::new(i * 50, i * 50 + 80))
            .collect();
        expect_same_results("hint", &idx, &oracle, &qs);
    }

    #[test]
    fn same_results_rejects_a_lying_index() {
        // an index that reports nothing must fail the differential check
        struct Mute;
        impl IntervalIndex for Mute {
            fn query_sink(&self, _q: RangeQuery, _sink: &mut dyn QuerySink) {}
            fn size_bytes(&self) -> usize {
                0
            }
            fn len(&self) -> usize {
                0
            }
        }
        let data = sample_data();
        let oracle = ScanOracle::new(&data);
        let qs = [RangeQuery::new(0, 2_047)];
        assert!(assert_same_results(&Mute, &oracle, &qs).is_err());
    }

    #[test]
    fn indexes_agree_accepts_two_exact_indexes() {
        let data = sample_data();
        let a = Hint::build(&data, 9);
        let b = HintMSubs::build(&data, 8, SubsConfig::full());
        let qs: Vec<RangeQuery> = (0..24)
            .map(|i| RangeQuery::new(i * 80, i * 80 + 200))
            .collect();
        assert!(assert_indexes_agree("hint-vs-subs", &a, &b, &qs).is_ok());
    }

    #[test]
    fn fuzz_workloads_are_deterministic() {
        let a = fuzz::workload(7, 1_024, 50, 20, 30);
        let b = fuzz::workload(7, 1_024, 50, 20, 30);
        assert_eq!(a.data, b.data);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.ops, b.ops);
        let c = fuzz::workload(8, 1_024, 50, 20, 30);
        assert_ne!(a.data, c.data);
    }

    #[test]
    fn shard_counts_defaults_without_env() {
        // NB: runs without HINT_TEST_SHARDS in the normal suite
        if std::env::var("HINT_TEST_SHARDS").is_err() {
            assert_eq!(shard_counts(), vec![1, 2, 3, 8]);
        }
    }
}
