//! Differential property tests for the sharded parallel executor:
//! `ShardedIndex` with any shard count `K` must produce bit-identical
//! result sets to the unsharded index it wraps — across solo
//! `query_sink`, parallel `query_batch`, the typed `query_batch_merge`
//! path, count/exists/first-`k` sinks, and insert/delete-then-reseal
//! cycles.
//!
//! The shard-count sweep comes from `test_support::shard_counts()`
//! (default `[1, 2, 3, 8]`), which CI pins via `HINT_TEST_SHARDS`.

use hint_suite::hint_core::{
    CountSink, Domain, ExistsSink, FirstK, Hint, HintMSubs, HintOptions, Interval, IntervalId,
    IntervalIndex, QuerySink, RangeQuery, ResultRun, ScanOracle, ShardedIndex, SubsConfig,
};
use proptest::prelude::*;
use test_support::{
    assert_indexes_agree, assert_same_results_named, intervals, queries, shard_counts, sorted,
};

const DOM: u64 = 4_096;

fn sharded_subs(data: &[Interval], k: usize, cfg: SubsConfig) -> ShardedIndex<HintMSubs> {
    ShardedIndex::build_with_domain(data, 0, DOM - 1, k, |slice, lo, hi| {
        HintMSubs::build_with_domain(slice, Domain::new(lo, hi, 9), cfg)
    })
}

fn sharded_hint(data: &[Interval], k: usize) -> ShardedIndex<Hint> {
    ShardedIndex::build_with_domain(data, 0, DOM - 1, k, |slice, lo, hi| {
        Hint::build_with_domain(slice, Domain::new(lo, hi, 9), HintOptions::default())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // sharded(K) == unsharded == oracle, unsealed and sealed, for the
    // update-friendly HINT^m variant the serving layer wraps
    #[test]
    fn sharded_subs_matches_unsharded_for_every_k(
        data in intervals(DOM),
        qs in queries(DOM, 12),
        seal in any::<bool>(),
    ) {
        let oracle = ScanOracle::new(&data);
        let mut unsharded = HintMSubs::build_with_domain(
            &data, Domain::new(0, DOM - 1, 9), SubsConfig::full());
        if seal {
            unsharded.seal();
        }
        for k in shard_counts() {
            let mut sharded = sharded_subs(&data, k, SubsConfig::full());
            if seal {
                IntervalIndex::seal(&mut sharded);
            }
            assert_same_results_named("sharded-subs", &sharded, &oracle, &qs)?;
            assert_indexes_agree("sharded-vs-unsharded", &sharded, &unsharded, &qs)?;
        }
    }

    // same property around the flagship fully-optimized index
    #[test]
    fn sharded_hint_matches_unsharded_for_every_k(
        data in intervals(DOM),
        qs in queries(DOM, 10),
    ) {
        let unsharded = Hint::build_with_domain(
            &data, Domain::new(0, DOM - 1, 9), HintOptions::default());
        for k in shard_counts() {
            let sharded = sharded_hint(&data, k);
            assert_indexes_agree("sharded-hint", &sharded, &unsharded, &qs)?;
        }
    }

    // the typed MergeableSink path: collect / count / exists / first-k
    // forks merged across the shard boundary must match the solo answers
    #[test]
    fn batch_merge_path_matches_solo_for_every_sink(
        data in intervals(DOM),
        qs in queries(DOM, 12),
        k in 0usize..10,
    ) {
        for shards in shard_counts() {
            let mut idx = sharded_subs(&data, shards, SubsConfig::full());
            IntervalIndex::seal(&mut idx);

            let mut collects: Vec<Vec<IntervalId>> = qs.iter().map(|_| Vec::new()).collect();
            idx.query_batch_merge(&qs, &mut collects);
            let mut counts = vec![CountSink::new(); qs.len()];
            idx.query_batch_merge(&qs, &mut counts);
            let mut exists = vec![ExistsSink::new(); qs.len()];
            idx.query_batch_merge(&qs, &mut exists);
            let mut firsts: Vec<FirstK> = qs.iter().map(|_| FirstK::new(k)).collect();
            idx.query_batch_merge(&qs, &mut firsts);

            for (i, &q) in qs.iter().enumerate() {
                let mut solo = Vec::new();
                idx.query_sink(q, &mut solo);
                prop_assert_eq!(
                    &collects[i], &solo,
                    "K={} collect merge != solo on {:?}", shards, q
                );
                prop_assert_eq!(counts[i].count(), solo.len(), "K={} count on {:?}", shards, q);
                prop_assert_eq!(exists[i].found(), !solo.is_empty(), "K={} exists on {:?}", shards, q);
                let mut solo_k = FirstK::new(k);
                idx.query_sink(q, &mut solo_k);
                prop_assert!(
                    firsts[i].len() <= k,
                    "K={} FirstK over-emitted across the merge boundary on {:?}", shards, q
                );
                prop_assert_eq!(
                    firsts[i].ids(), solo_k.ids(),
                    "K={} FirstK merge != solo on {:?}", shards, q
                );
            }
        }
    }

    // insert/delete-then-reseal cycles: the sharded index routes writes
    // to owning shards and stays exact through overlay and reseal states
    #[test]
    fn update_and_reseal_cycles_match_oracle_for_every_k(
        data in intervals(DOM),
        ops in prop::collection::vec((any::<bool>(), 0u64..DOM, 0u64..256), 1..32),
        qs in queries(DOM, 8),
    ) {
        for k in shard_counts() {
            let mut sharded = sharded_subs(&data, k, SubsConfig::update_friendly());
            let mut oracle = ScanOracle::new(&data);
            let mut live: Vec<Interval> = data.clone();
            let mut next_id = 700_000u64;
            IntervalIndex::seal(&mut sharded);
            for (i, &(is_insert, st, len)) in ops.iter().enumerate() {
                if is_insert || live.is_empty() {
                    let s = Interval::new(next_id, st, (st + len).min(DOM - 1));
                    next_id += 1;
                    sharded.insert(s);
                    oracle.insert(s);
                    live.push(s);
                } else {
                    let victim = live.swap_remove((st as usize) % live.len());
                    prop_assert_eq!(
                        sharded.delete(&victim),
                        oracle.delete(victim.id),
                        "K={} delete {:?}", k, victim
                    );
                }
                if i == ops.len() / 2 {
                    // mid-stream reseal: merge overlays into the arenas
                    IntervalIndex::seal(&mut sharded);
                }
            }
            assert_same_results_named("sharded overlay", &sharded, &oracle, &qs)?;
            IntervalIndex::seal(&mut sharded);
            assert_same_results_named("sharded resealed", &sharded, &oracle, &qs)?;
            prop_assert_eq!(sharded.len(), oracle.len(), "K={} live count", k);
        }
    }
}

/// Deterministic saturation check at the merge boundary: a query whose
/// results live in many shards, answered with `FirstK`, must never
/// receive more than `k` ids — on the dyn `query_batch` path *and* the
/// typed `query_batch_merge` path.
#[test]
fn first_k_never_over_emits_across_the_merge_boundary() {
    // 800 intervals spread evenly, so every one of the 8 shards owns ~100
    // results for the full-domain query below
    let data: Vec<Interval> = (0..800)
        .map(|i| Interval::new(i, i * 5, i * 5 + 3))
        .collect();
    let idx = {
        let mut idx = ShardedIndex::build_with(&data, 8, |slice, lo, hi| {
            HintMSubs::build_with_domain(slice, Domain::new(lo, hi, 8), SubsConfig::full())
        });
        IntervalIndex::seal(&mut idx);
        idx
    };
    assert_eq!(idx.shard_count(), 8);
    let q = RangeQuery::new(0, 4_003); // selects everything
    let full = idx.count(q);
    assert_eq!(full, 800);
    for k in [0usize, 1, 7, 100, 799, 800, 1_000] {
        // dyn path: per-shard result buffers merged through emit_slice
        let queries = [q, q];
        let mut a = FirstK::new(k);
        let mut b = FirstK::new(k);
        {
            let mut sinks: Vec<&mut dyn QuerySink> = vec![&mut a, &mut b];
            idx.query_batch(&queries, &mut sinks);
        }
        // typed path: saturation-aware MergeableSink::merge
        let mut m = vec![FirstK::new(k), FirstK::new(k)];
        idx.query_batch_merge(&queries, &mut m);
        for sink in [&a, &b, &m[0], &m[1]] {
            assert!(
                sink.len() <= k,
                "FirstK({k}) over-emitted: {} results crossed the merge boundary",
                sink.len()
            );
            assert_eq!(sink.len(), k.min(full), "FirstK({k}) under-filled");
        }
        // every retained id is a real result
        let want = {
            let mut v = Vec::new();
            idx.query(q, &mut v);
            sorted(v)
        };
        for sink in [&a, &m[0]] {
            for id in sink.ids() {
                assert!(
                    want.binary_search(id).is_ok(),
                    "FirstK({k}) emitted fake id {id}"
                );
            }
        }
    }
}

/// The zero-copy read path, end to end: a `HandleSink` receives
/// comparison-free runs as slice handles into the sealed arenas, and the
/// merged handles of a sharded(K) batch must materialize to exactly the
/// solo (and unsharded) results — for K in {1, 2, 4, 8} and alongside
/// the count / exists / first-k sinks on the same batch.
#[test]
fn zero_copy_handle_merge_matches_solo_for_k_1_2_4_8() {
    let data: Vec<Interval> = (0..2_000)
        .map(|i| {
            let st = (i * 53) % (DOM - 96);
            Interval::new(i, st, (st + (i % 13) * 40).min(DOM - 1))
        })
        .collect();
    let qs: Vec<RangeQuery> = (0..48)
        .map(|i| {
            let st = (i * 157) % (DOM - 1);
            RangeQuery::new(st, (st + 30 + (i % 7) * 250).min(DOM - 1))
        })
        .collect();
    let mut unsharded =
        HintMSubs::build_with_domain(&data, Domain::new(0, DOM - 1, 9), SubsConfig::full());
    unsharded.seal();
    for k in [1usize, 2, 4, 8] {
        let mut idx = sharded_subs(&data, k, SubsConfig::full());
        IntervalIndex::seal(&mut idx);

        let mut handles: Vec<hint_suite::hint_core::HandleSink> = qs
            .iter()
            .map(|_| hint_suite::hint_core::HandleSink::new())
            .collect();
        idx.query_batch_merge(&qs, &mut handles);
        if k == 1 {
            // Guard against the test going vacuous: arena offers are
            // length-gated (`ARENA_HANDLE_MIN`), so sparse data could
            // silently stop exercising the zero-copy path. At K=1 no
            // replica filter can suppress handles — at least one
            // comparison-free run must cross the boundary un-copied.
            assert!(
                handles
                    .iter_mut()
                    .any(|s| s.runs().iter().any(|r| matches!(r, ResultRun::Arena(_)))),
                "no arena handle crossed the merge boundary — densify the test data"
            );
        }
        let mut counts = vec![CountSink::new(); qs.len()];
        idx.query_batch_merge(&qs, &mut counts);
        let mut exists = vec![ExistsSink::new(); qs.len()];
        idx.query_batch_merge(&qs, &mut exists);
        let mut firsts: Vec<FirstK> = qs.iter().map(|_| FirstK::new(5)).collect();
        idx.query_batch_merge(&qs, &mut firsts);

        for (i, (&q, sink)) in qs.iter().zip(handles).enumerate() {
            let mut solo = Vec::new();
            idx.query_sink(q, &mut solo);
            assert_eq!(
                sink.len(),
                solo.len(),
                "K={k}: handle count != solo on {q:?}"
            );
            let got = sink.into_vec();
            assert_eq!(got, solo, "K={k}: handle merge != solo on {q:?}");
            let mut reference = Vec::new();
            unsharded.query_sink(q, &mut reference);
            assert_eq!(
                sorted(got),
                sorted(reference),
                "K={k}: handle merge != unsharded on {q:?}"
            );
            assert_eq!(counts[i].count(), solo.len(), "K={k}: count on {q:?}");
            assert_eq!(
                exists[i].found(),
                !solo.is_empty(),
                "K={k}: exists on {q:?}"
            );
            let mut solo_k = FirstK::new(5);
            idx.query_sink(q, &mut solo_k);
            assert_eq!(firsts[i].ids(), solo_k.ids(), "K={k}: first-k on {q:?}");
        }
    }
}

/// The aggregation sinks behind the serving layer's top-k and histogram
/// verbs: forks merged across a sharded(K) batch must reproduce the
/// solo answers exactly — order included — for K in {1, 2, 4, 8}.
#[test]
fn top_k_and_histogram_merge_match_solo_for_k_1_2_4_8() {
    use hint_suite::hint_core::{BucketHistogram, TopKByDuration};
    use std::collections::HashMap;
    use std::sync::Arc;

    let data: Vec<Interval> = (0..1_500)
        .map(|i| {
            let st = (i * 97) % (DOM - 512);
            Interval::new(i, st, (st + (i * 31) % 509).min(DOM - 1))
        })
        .collect();
    let lookup: Arc<HashMap<u64, Interval>> = Arc::new(data.iter().map(|s| (s.id, *s)).collect());
    let qs: Vec<RangeQuery> = (0..24)
        .map(|i| {
            let st = (i * 311) % (DOM - 700);
            RangeQuery::new(st, st + 64 + (i % 5) * 160)
        })
        .collect();
    for k in [1usize, 2, 4, 8] {
        let mut idx = sharded_subs(&data, k, SubsConfig::full());
        IntervalIndex::seal(&mut idx);

        let mut tops: Vec<TopKByDuration<_>> = qs
            .iter()
            .map(|_| TopKByDuration::new(7, Arc::clone(&lookup)))
            .collect();
        idx.query_batch_merge(&qs, &mut tops);
        let mut hists: Vec<BucketHistogram<_>> = qs
            .iter()
            .map(|q| {
                let buckets = ((q.end - q.st) / 50 + 1) as usize;
                BucketHistogram::new(q.st, 50, buckets, Arc::clone(&lookup))
            })
            .collect();
        idx.query_batch_merge(&qs, &mut hists);

        for ((&q, top), hist) in qs.iter().zip(tops).zip(hists) {
            let mut solo_top = TopKByDuration::new(7, Arc::clone(&lookup));
            idx.query_sink(q, &mut solo_top);
            assert_eq!(
                top.into_ids(),
                solo_top.into_ids(),
                "K={k}: top-k merge != solo on {q:?}"
            );
            let buckets = ((q.end - q.st) / 50 + 1) as usize;
            let mut solo_hist = BucketHistogram::new(q.st, 50, buckets, Arc::clone(&lookup));
            idx.query_sink(q, &mut solo_hist);
            assert_eq!(
                hist.into_counts(),
                solo_hist.into_counts(),
                "K={k}: histogram merge != solo on {q:?}"
            );
        }
    }
}

/// Shard bookkeeping stays consistent through boundary-crossing writes.
#[test]
fn replica_accounting_survives_update_cycles() {
    let data: Vec<Interval> = (0..400)
        .map(|i| {
            Interval::new(
                i,
                (i * 11) % 3_900,
                ((i * 11) % 3_900 + i % 200).min(DOM - 1),
            )
        })
        .collect();
    let mut idx = sharded_subs(&data, 4, SubsConfig::update_friendly());
    let before = idx.replicated();
    // insert a monster interval crossing every shard...
    let monster = Interval::new(555_555, 0, DOM - 1);
    idx.insert(monster);
    assert_eq!(idx.replicated(), before + 3, "replica in each later shard");
    // ...and delete it again
    assert!(idx.delete(&monster));
    assert!(!idx.delete(&monster), "double delete must miss");
    assert_eq!(idx.replicated(), before);
    assert_eq!(idx.len(), data.len());
}
