//! Cross-index agreement: every index in the workspace must return exactly
//! the same result set as the linear-scan oracle, on every dataset shape
//! the paper evaluates (long intervals, short intervals, skewed synthetic)
//! and on every query extent of Figure 13.

use hint_suite::grid1d::Grid1D;
use hint_suite::hint_core::{
    CfLayout, Eval, Hint, HintCf, HintMBase, HintMSubs, HintOptions, IntervalId, IntervalIndex,
    RangeQuery, ScanOracle, SubsConfig,
};
use hint_suite::interval_tree::IntervalTree;
use hint_suite::period_index::PeriodIndex;
use hint_suite::timeline_index::TimelineIndex;
use hint_suite::workloads::queries::QueryWorkload;
use hint_suite::workloads::realistic::{RealDataset, RealisticConfig};
use hint_suite::workloads::synthetic::SyntheticConfig;

fn sorted(mut v: Vec<IntervalId>) -> Vec<IntervalId> {
    v.sort_unstable();
    v
}

fn check_all(data: &[hint_suite::hint_core::Interval], label: &str) {
    let oracle = ScanOracle::new(data);
    let max = data.iter().map(|s| s.end).max().unwrap();
    let min = data.iter().map(|s| s.st).min().unwrap();

    let indexes: Vec<(&str, Box<dyn IntervalIndex>)> = vec![
        ("interval-tree", Box::new(IntervalTree::build(data))),
        (
            "timeline",
            Box::new(TimelineIndex::build_with_spacing(data, 128)),
        ),
        ("grid1d", Box::new(Grid1D::build(data, 256))),
        ("period", Box::new(PeriodIndex::build(data, 32, 4))),
        (
            "period-adaptive",
            Box::new(PeriodIndex::build_adaptive(data, 32)),
        ),
        (
            "hint-cf-sparse",
            Box::new(HintCf::build(data, 22, CfLayout::Sparse)),
        ),
        ("hint-m-base", Box::new(HintMBase::build(data, 12))),
        (
            "hint-m-subs",
            Box::new(HintMSubs::build(data, 12, SubsConfig::full())),
        ),
        (
            "hint-m-subs-uf",
            Box::new(HintMSubs::build(data, 12, SubsConfig::update_friendly())),
        ),
        ("hint", Box::new(Hint::build(data, 12))),
        (
            "hint-rowwise",
            Box::new(Hint::build_with_options(
                data,
                12,
                HintOptions {
                    sparse: true,
                    columnar: false,
                },
            )),
        ),
    ];

    for extent_frac in [0.0, 0.0001, 0.001, 0.01, 0.1] {
        let extent = ((max - min) as f64 * extent_frac) as u64;
        let workload = QueryWorkload::uniform(min, max, extent, 200, 7);
        for q in &workload {
            let want = oracle.query_sorted(*q);
            for (name, idx) in &indexes {
                let mut got = Vec::new();
                idx.query(*q, &mut got);
                assert_eq!(sorted(got), want, "{label}/{name} disagrees on {q:?}");
            }
        }
    }
}

#[test]
fn agreement_on_books_like_clone() {
    let data = RealisticConfig::new(RealDataset::Books)
        .with_scale(1024)
        .generate();
    check_all(&data, "BOOKS");
}

#[test]
fn agreement_on_taxis_like_clone() {
    let data = RealisticConfig::new(RealDataset::Taxis)
        .with_scale(16384)
        .generate();
    check_all(&data, "TAXIS");
}

#[test]
fn agreement_on_skewed_synthetic() {
    let data = SyntheticConfig {
        domain: 100_000,
        cardinality: 5_000,
        alpha: 1.05,
        sigma: 2_000.0,
        seed: 3,
    }
    .generate();
    check_all(&data, "synthetic-skewed");
}

#[test]
fn agreement_on_short_synthetic() {
    let data = SyntheticConfig {
        domain: 50_000,
        cardinality: 8_000,
        alpha: 1.8,
        sigma: 20_000.0,
        seed: 5,
    }
    .generate();
    check_all(&data, "synthetic-short");
}

#[test]
fn base_eval_strategies_agree_everywhere() {
    let data = SyntheticConfig {
        domain: 65_536,
        cardinality: 4_000,
        alpha: 1.1,
        sigma: 5_000.0,
        seed: 11,
    }
    .generate();
    let idx = HintMBase::build(&data, 10);
    let workload = QueryWorkload::uniform(0, 65_535, 500, 500, 13);
    for q in &workload {
        let mut td = Vec::new();
        let mut bu = Vec::new();
        idx.query_with(*q, Eval::TopDown, &mut td);
        idx.query_with(*q, Eval::BottomUp, &mut bu);
        assert_eq!(sorted(td), sorted(bu), "{q:?}");
    }
}

#[test]
fn stabbing_queries_agree() {
    let data = RealisticConfig::new(RealDataset::Greend)
        .with_scale(65536)
        .generate();
    let oracle = ScanOracle::new(&data);
    let max = data.iter().map(|s| s.end).max().unwrap();
    let hint = Hint::build(&data, 14);
    let tree = IntervalTree::build(&data);
    for t in (0..max).step_by((max as usize / 500).max(1)) {
        let want = oracle.query_sorted(RangeQuery::stab(t));
        let mut a = Vec::new();
        hint.stab(t, &mut a);
        let mut b = Vec::new();
        tree.stab(t, &mut b);
        assert_eq!(sorted(a), want, "hint stab {t}");
        assert_eq!(sorted(b), want, "tree stab {t}");
    }
}
