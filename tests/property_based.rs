//! Property-based tests (proptest) on the core invariants:
//!
//! * every HINT variant returns exactly the oracle's result set for
//!   arbitrary interval collections and queries (differential checks via
//!   the shared `test-support` harness);
//! * Algorithm 1's partition assignment covers each mapped interval
//!   exactly once with exactly one original;
//! * arbitrary insert/delete interleavings keep all updatable indexes
//!   consistent with the oracle;
//! * query results never contain duplicates or tombstones (enforced
//!   inside `assert_same_results`).

use hint_suite::hint_core::{
    assign, CfLayout, Hint, HintCf, HintMBase, HintMSubs, Interval, ScanOracle, SubsConfig,
};
use proptest::prelude::*;
use test_support::{assert_same_results_named, intervals, query};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn hint_matches_oracle(data in intervals(10_000), q in query(10_000), m in 1u32..14) {
        let oracle = ScanOracle::new(&data);
        let idx = Hint::build(&data, m);
        assert_same_results_named("hint", &idx, &oracle, &[q])?;
    }

    #[test]
    fn hintm_subs_matches_oracle(
        data in intervals(5_000),
        q in query(5_000),
        m in 1u32..12,
        sort in any::<bool>(),
        sopt in any::<bool>(),
    ) {
        let oracle = ScanOracle::new(&data);
        let idx = HintMSubs::build(&data, m, SubsConfig { sort, sopt });
        assert_same_results_named("hint-m-subs", &idx, &oracle, &[q])?;
    }

    #[test]
    fn hintm_base_matches_oracle(data in intervals(5_000), q in query(5_000), m in 1u32..12) {
        let oracle = ScanOracle::new(&data);
        let idx = HintMBase::build(&data, m);
        assert_same_results_named("hint-m-base", &idx, &oracle, &[q])?;
    }

    #[test]
    fn hint_cf_exact_on_lossless_domain(data in intervals(512), q in query(512)) {
        let oracle = ScanOracle::new(&data);
        let idx = HintCf::build_exact(&data, CfLayout::Sparse);
        prop_assume!(idx.is_exact());
        assert_same_results_named("hint-cf", &idx, &oracle, &[q])?;
    }

    #[test]
    fn sealed_variants_match_oracle(
        data in intervals(5_000),
        q in query(5_000),
        m in 1u32..12,
        sort in any::<bool>(),
        sopt in any::<bool>(),
    ) {
        let oracle = ScanOracle::new(&data);
        let mut subs = HintMSubs::build(&data, m, SubsConfig { sort, sopt });
        subs.seal();
        assert_same_results_named("sealed subs", &subs, &oracle, &[q])?;
        let mut base = HintMBase::build(&data, m);
        base.seal();
        assert_same_results_named("sealed base", &base, &oracle, &[q])?;
        let mut hint = Hint::build(&data, m);
        hint.seal();
        assert_same_results_named("sealed (compacted) hint", &hint, &oracle, &[q])?;
    }

    #[test]
    fn assignment_covers_exactly_once(m in 1u32..10, raw in (0u64..1024, 0u64..1024)) {
        let max = (1u64 << m) - 1;
        let a = raw.0.min(raw.1).min(max);
        let b = raw.0.max(raw.1).min(max);
        let asgs = assign::assignments(m, a, b);
        // exactly one original
        prop_assert_eq!(asgs.iter().filter(|x| x.kind.is_original()).count(), 1);
        // disjoint cover of [a, b]
        let mut covered = vec![0u32; (max + 1) as usize];
        for x in &asgs {
            let shift = m - x.level;
            let lo = x.offset << shift;
            let hi = ((x.offset + 1) << shift) - 1;
            for v in lo..=hi {
                covered[v as usize] += 1;
            }
        }
        for (v, &c) in covered.iter().enumerate() {
            let inside = (v as u64) >= a && (v as u64) <= b;
            prop_assert_eq!(c, u32::from(inside), "value {}", v);
        }
        // at most two partitions per level
        for l in 0..=m {
            prop_assert!(asgs.iter().filter(|x| x.level == l).count() <= 2);
        }
    }

    #[test]
    fn update_interleavings_match_oracle(
        initial in intervals(2_048),
        ops in prop::collection::vec((any::<bool>(), 0u64..2_000, 0u64..48), 1..60),
        q in query(2_048),
    ) {
        let domain = hint_suite::hint_core::Domain::new(0, 2_047, 11);
        let mut subs = HintMSubs::build_with_domain(
            &initial, domain, SubsConfig::update_friendly());
        let mut oracle = ScanOracle::new(&initial);
        let mut next_id = 1_000_000u64;
        let mut live: Vec<Interval> = initial.clone();
        for (is_insert, st, len) in ops {
            if is_insert || live.is_empty() {
                let s = Interval::new(next_id, st, (st + len).min(2_047));
                next_id += 1;
                subs.insert(s);
                oracle.insert(s);
                live.push(s);
            } else {
                let victim = live.swap_remove((st as usize) % live.len());
                prop_assert_eq!(subs.delete(&victim), oracle.delete(victim.id));
            }
        }
        assert_same_results_named("subs after updates", &subs, &oracle, &[q])?;
    }
}
