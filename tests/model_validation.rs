//! Validates the paper's analytical claims (Table 7, Lemma 4, Theorem 1)
//! against measurements on the realistic clones.

use hint_suite::hint_core::cost_model::{self, ModelInput};
use hint_suite::hint_core::{Betas, Hint, WorkloadStats};
use hint_suite::workloads::queries::QueryWorkload;
use hint_suite::workloads::realistic::{RealDataset, RealisticConfig};

#[test]
fn lemma4_avg_compared_partitions_below_four_ish() {
    for (ds, scale) in [(RealDataset::Books, 256), (RealDataset::Taxis, 8192)] {
        let cfg = RealisticConfig::new(ds).with_scale(scale);
        let data = cfg.generate();
        let idx = Hint::build(&data, 14);
        let extent = (cfg.domain() as f64 * 0.001) as u64;
        let queries = QueryWorkload::uniform(0, cfg.domain() - 1, extent, 2_000, 1);
        let mut ws = WorkloadStats::default();
        let mut out = Vec::new();
        for &q in queries.queries() {
            out.clear();
            ws.push(idx.query_stats(q, &mut out));
        }
        let avg = ws.avg_partitions_compared();
        // Lemma 4: the expectation is 4; allow slack for boundary effects
        assert!(avg <= 4.5, "{}: avg compared partitions = {avg}", ds.name());
        assert!(avg >= 0.5, "{}: instrumentation broken ({avg})", ds.name());
    }
}

#[test]
fn theorem1_replication_factor_model_tracks_measurement() {
    // long intervals (BOOKS-like): k substantially above 1; model within 2x
    let cfg = RealisticConfig::new(RealDataset::Books).with_scale(256);
    let data = cfg.generate();
    let input = ModelInput::from_data(&data, 0.0);
    for m in [8, 10, 12] {
        let idx = Hint::build(&data, m);
        let k_exp = idx.entries() as f64 / idx.len() as f64;
        let k_model = cost_model::replication_factor(&input, m);
        assert!(
            k_model / k_exp < 2.0 && k_exp / k_model < 2.0,
            "m={m}: model {k_model:.2} vs measured {k_exp:.2}"
        );
    }

    // short intervals (TAXIS-like): k stays near 1
    let cfg = RealisticConfig::new(RealDataset::Taxis).with_scale(4096);
    let data = cfg.generate();
    let idx = Hint::build(&data, 12);
    let k_exp = idx.entries() as f64 / idx.len() as f64;
    assert!(
        k_exp < 1.6,
        "short intervals should barely replicate: {k_exp}"
    );
}

#[test]
fn m_opt_model_sane_across_datasets() {
    for ds in RealDataset::ALL {
        let cfg = RealisticConfig::new(ds).with_scale(ds.default_scale() * 16);
        let data = cfg.generate();
        let lambda_q = cfg.domain() as f64 * 0.001;
        let input = ModelInput::from_data(&data, lambda_q);
        let m = cost_model::m_opt(&input, &Betas::DEFAULT, 0.03);
        assert!(m >= 1 && m <= input.max_m(), "{}: m_opt = {m}", ds.name());
        // cost must be non-increasing in m and converged at m_opt
        let at_opt = cost_model::estimated_cost(&input, &Betas::DEFAULT, m);
        let at_max = cost_model::estimated_cost(&input, &Betas::DEFAULT, input.max_m());
        assert!(at_opt <= at_max * 1.031, "{}: not converged", ds.name());
    }
}

#[test]
fn theorem2_comparisons_shrink_with_m() {
    let cfg = RealisticConfig::new(RealDataset::Books).with_scale(256);
    let data = cfg.generate();
    let extent = (cfg.domain() as f64 * 0.001) as u64;
    let queries = QueryWorkload::uniform(0, cfg.domain() - 1, extent, 1_000, 3);
    let mut prev = f64::INFINITY;
    for m in [6, 9, 12, 15] {
        let idx = Hint::build(&data, m);
        let mut ws = WorkloadStats::default();
        let mut out = Vec::new();
        for &q in queries.queries() {
            out.clear();
            ws.push(idx.query_stats(q, &mut out));
        }
        let avg = ws.avg_comparisons();
        // O(n / 2^m): must drop (or stay negligible) as m grows
        assert!(avg <= prev * 1.10 + 8.0, "m={m}: {avg} vs prev {prev}");
        prev = avg;
    }
}
