//! Stateful lifecycle fuzz for the pooled serving engine: long seeded
//! interleavings of insert / delete / seal / re-tune / query (solo,
//! batched, merged, bounded sinks) driven through a [`Session`] — whose
//! shards live on the persistent worker pool — against the `ScanOracle`
//! twin, across the `HINT_TEST_SHARDS` sweep.
//!
//! Also home to the worker-pool shutdown/respawn coverage (drop a pool
//! mid-stream, reseal while a batch is pipelined behind the write
//! barrier, rebuild a pool from a recovered index) and the re-tune
//! correctness properties (a shard resealed at any `m' != m` answers
//! identically for every sink type; the cost model's choice never loses
//! to the old `m` on the observed histogram beyond its tolerance).
//!
//! **Convention:** any seed that ever fails here is shrunk, fixed, and
//! then added to `tests/regressions.rs` (`replay_lifecycle`) forever.

use hint_suite::hint_core::{
    mix_cost, retuned_m, Betas, Domain, ExtentMix, FirstK, HandleSink, HintMSubs, Interval,
    IntervalId, IntervalIndex, ModelInput, RangeQuery, ResultRun, RetunePolicy, ScanOracle,
    Session, ShardPool, ShardedIndex, SubsConfig,
};
use proptest::prelude::*;
use serve::{duplex, Client, ServeConfig, Server, Status};
use test_support::{expect_same_results, fuzz, shard_counts};

const DOM: u64 = 4_096;

fn build_sharded(data: &[Interval], k: usize, cfg: SubsConfig) -> ShardedIndex<HintMSubs> {
    ShardedIndex::build_with_domain(data, 0, DOM - 1, k, |slice, lo, hi| {
        HintMSubs::build_with_domain(slice, Domain::new(lo, hi, 9), cfg)
    })
}

/// Sorted result set of one solo query through the session.
fn session_sorted(session: &Session<HintMSubs>, q: RangeQuery) -> Vec<IntervalId> {
    let mut got: Vec<IntervalId> = Vec::new();
    session.query_sink(q, &mut got);
    got.sort_unstable();
    got
}

/// The CI seed matrix: 64 fixed seeds, replayed forever. The driver
/// lives in `test_support::lifecycle` so any failing seed can be added
/// to `tests/regressions.rs` and replay the identical interleaving.
#[test]
fn lifecycle_fuzz_seed_matrix() {
    for seed in 1..=64u64 {
        test_support::lifecycle::replay(seed);
    }
}

/// Zero-copy slice handles across a reseal epoch, deterministically:
/// handles taken from one sealed epoch must materialize that epoch's
/// snapshot even after deletes tombstone the shared columns
/// (copy-on-write), an insert dirties the index, and a reseal replaces
/// the arenas underneath them. The seeded driver's case 11 fuzzes the
/// same property across the whole `lifecycle_fuzz_seed_matrix`.
#[test]
fn zero_copy_handles_survive_a_reseal_epoch() {
    let w = fuzz::workload(0x2cee, DOM, 500, 16, 0);
    for k in shard_counts() {
        let mut session = Session::with_retune(
            build_sharded(&w.data, k, SubsConfig::update_friendly()),
            RetunePolicy::OnSeal,
        );
        let mut oracle = ScanOracle::new(&w.data);
        // epoch 1: acquire handles into the freshly sealed arenas
        let qs = &w.queries[..12.min(w.queries.len())];
        let want: Vec<Vec<IntervalId>> = qs.iter().map(|&q| oracle.query_sorted(q)).collect();
        let mut handles: Vec<HandleSink> = qs.iter().map(|_| HandleSink::new()).collect();
        session.query_batch_merge(qs, &mut handles);
        if k == 1 {
            // the property below is vacuous unless real handles exist:
            // arena offers are length-gated (`ARENA_HANDLE_MIN`), so at
            // K=1 (no replica filtering) at least one run must have
            // crossed the merge boundary as a live arena slice
            assert!(
                handles
                    .iter_mut()
                    .any(|s| s.runs().iter().any(|r| matches!(r, ResultRun::Arena(_)))),
                "no arena handle acquired — the reseal-epoch property went vacuous"
            );
        }
        // mutate: deletes tombstone the very columns the handles point
        // into (forcing the copy-on-write), an insert lands, and the
        // reseal builds replacement arenas
        for victim in w.data.iter().step_by(7) {
            assert!(session.delete(victim), "K={k} seeded victim missing");
            oracle.delete(victim.id);
        }
        session
            .try_insert(Interval::new(920_000, 100, 2_000))
            .unwrap();
        oracle.insert(Interval::new(920_000, 100, 2_000));
        assert!(session.seal_if_dirty());
        // the old epoch's handles still read the old epoch's snapshot
        for (sink, want) in handles.into_iter().zip(&want) {
            let mut got = sink.into_vec();
            got.sort_unstable();
            assert_eq!(&got, want, "K={k}: handle diverged across the epoch");
        }
        // and fresh queries see the new epoch
        for &q in qs {
            assert_eq!(session_sorted(&session, q), oracle.query_sorted(q), "K={k}");
        }
    }
}

// ---- worker-pool shutdown / respawn coverage -----------------------

/// Dropping a pool (and a session) with work still queued must drain
/// and join without deadlocking — the drop path closes every task
/// channel and joins the workers.
#[test]
fn dropping_a_busy_pool_does_not_deadlock() {
    let w = fuzz::workload(0x11fe, DOM, 400, 0, 0);
    for k in shard_counts() {
        let mut pool = ShardPool::new(build_sharded(&w.data, k, SubsConfig::full()));
        // queue fire-and-forget mutations the workers may still be
        // draining when the pool is dropped
        for i in 0..256u64 {
            let st = (i * 13) % (DOM - 8);
            pool.insert(Interval::new(700_000 + i, st, st + 7));
        }
        drop(pool); // must join every worker, not leak or hang
    }
    // the session spelling: drop with a dirty overlay and queued writes
    let mut session = Session::with_retune(
        build_sharded(&w.data, 4, SubsConfig::full()),
        RetunePolicy::OnSeal,
    );
    for i in 0..256u64 {
        session
            .try_insert(Interval::new(
                800_000 + i,
                i % DOM,
                (i % DOM + 5).min(DOM - 1),
            ))
            .unwrap();
    }
    drop(session);
}

/// A server dropped mid-stream — pipelined queries in flight, replies
/// unread — must shut down cleanly (scheduler flushes, connection
/// threads unwind as their transports close).
#[test]
fn server_shutdown_with_pipelined_queries_in_flight() {
    let w = fuzz::workload(0x11ff, DOM, 300, 0, 0);
    let session = Session::with_retune(
        build_sharded(&w.data, 4, SubsConfig::full()),
        RetunePolicy::Idle,
    );
    let server = Server::start(session, ServeConfig::default()).unwrap();
    let (client_end, server_end) = duplex();
    server.attach(server_end);
    let mut client = Client::new(client_end).unwrap();
    for i in 0..64u64 {
        let st = (i * 61) % DOM;
        client
            .send(&serve::Request::Query(RangeQuery::new(
                st,
                (st + 300).min(DOM - 1),
            )))
            .unwrap();
    }
    // read only a prefix of the replies, then abandon the connection
    for _ in 0..8 {
        let reply = client.recv_reply(|_| {}).unwrap();
        assert_eq!(reply.status, Status::Ok);
    }
    drop(client);
    server.shutdown(); // must not deadlock on the unread tail
}

/// Reseal (and re-tune) while a batch is pipelined behind the write
/// barrier: queries before the Seal see the pre-seal index, queries
/// after it the re-tuned one, and every reply stays exact and in FIFO
/// order on the connection.
#[test]
fn reseal_behind_the_write_barrier_keeps_replies_exact() {
    let w = fuzz::workload(0x1200, DOM, 400, 24, 0);
    let mut oracle = ScanOracle::new(&w.data);
    let session = Session::with_retune(
        build_sharded(&w.data, 4, SubsConfig::update_friendly()),
        RetunePolicy::OnSeal,
    );
    let server = Server::start(session, ServeConfig::default()).unwrap();
    let (client_end, server_end) = duplex();
    server.attach(server_end);
    let mut client = Client::new(client_end).unwrap();
    // skew the mix so the mid-stream reseal has something to re-tune on
    for t in 0..24u64 {
        client
            .send(&serve::Request::Query(RangeQuery::stab(t * 131)))
            .unwrap();
    }
    // pipeline: queries → insert (barrier) → seal (barrier, re-tunes) →
    // queries, all before reading a single reply
    for q in &w.queries[..12] {
        client.send(&serve::Request::Query(*q)).unwrap();
    }
    let fresh = Interval::new(900_000, 64, 1_900);
    client.send(&serve::Request::Insert(fresh)).unwrap();
    client.send(&serve::Request::Seal).unwrap();
    for q in &w.queries[12..] {
        client.send(&serve::Request::Query(*q)).unwrap();
    }
    // drain in order: stabs, pre-barrier queries (pre-insert snapshot),
    // insert ack, seal ack, post-barrier queries (post-insert snapshot)
    for t in 0..24u64 {
        let mut got: Vec<IntervalId> = Vec::new();
        let reply = client.recv_reply(|ids| got.extend_from_slice(ids)).unwrap();
        assert_eq!(reply.status, Status::Ok);
        got.sort_unstable();
        assert_eq!(got, oracle.query_sorted(RangeQuery::stab(t * 131)));
    }
    for q in &w.queries[..12] {
        let mut got: Vec<IntervalId> = Vec::new();
        let reply = client.recv_reply(|ids| got.extend_from_slice(ids)).unwrap();
        assert_eq!(reply.status, Status::Ok);
        got.sort_unstable();
        assert_eq!(got, oracle.query_sorted(*q), "pre-barrier {q:?}");
    }
    let ins = client.recv_reply(|_| {}).unwrap();
    assert_eq!(ins.status, Status::Ok);
    oracle.insert(fresh);
    let seal = client.recv_reply(|_| {}).unwrap();
    assert_eq!(seal.status, Status::Ok);
    for q in &w.queries[12..] {
        let mut got: Vec<IntervalId> = Vec::new();
        let reply = client.recv_reply(|ids| got.extend_from_slice(ids)).unwrap();
        assert_eq!(reply.status, Status::Ok);
        got.sort_unstable();
        assert_eq!(got, oracle.query_sorted(*q), "post-barrier {q:?}");
    }
    drop(client);
    server.shutdown();
}

/// `into_index` recovers the shards from a pool's workers; a fresh pool
/// spun up from the result answers identically — the respawn path a
/// process uses to rebuild its pool after reconfiguring.
#[test]
fn pool_respawn_via_into_index_preserves_the_index() {
    let w = fuzz::workload(0x1201, DOM, 300, 24, 0);
    let oracle = ScanOracle::new(&w.data);
    for k in shard_counts() {
        let mut pool = ShardPool::new(build_sharded(&w.data, k, SubsConfig::full()));
        pool.seal_all();
        // route some writes through the first pool, then recover
        let extra = Interval::new(901_000, 10, DOM / 2);
        pool.insert(extra);
        let mut oracle = oracle.clone();
        oracle.insert(extra);
        let recovered = pool.into_index();
        assert_eq!(recovered.shard_count(), k.min(DOM as usize));
        let pool2 = ShardPool::new(recovered);
        expect_same_results(
            &format!("respawned pool K={k}"),
            &pool2,
            &oracle,
            &w.queries,
        );
    }
}

// ---- crash-safe snapshot / restore ---------------------------------

/// The crash-recovery matrix: a save of state B over a durable state A
/// is killed at *every* fault point the save has (each chunk write, the
/// fsync, the rename), and after each simulated crash the file at the
/// snapshot path must restore to a bit-identical pre- (A) or post- (B)
/// snapshot image — never garbage, never a panic. Read-side bit rot
/// must surface as a typed `RestoreError`.
#[test]
fn crash_recovery_matrix_covers_every_fault_point() {
    use hint_suite::hint_core::hintm::snapshot::tmp_siblings;
    use hint_suite::hint_core::{FaultIo, FaultKind, StdSnapshotIo};
    let dir = std::env::temp_dir().join(format!("hint-crash-matrix-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let w = fuzz::workload(0xFA01, DOM, 400, 12, 0);
    for k in shard_counts() {
        let path = dir.join(format!("k{k}.snap"));
        // state A: sealed seed build, durably saved
        let mut session = Session::with_retune(
            build_sharded(&w.data, k, SubsConfig::update_friendly()),
            RetunePolicy::Off,
        );
        session.snapshot(&path).unwrap();
        let bytes_a = session.snapshot_bytes().unwrap();
        // state B: mutate past A (inserts + a delete), sealed by the
        // snapshot barrier
        let mut oracle_b = ScanOracle::new(&w.data);
        for i in 0..48u64 {
            let st = (i * 97) % (DOM - 9);
            let s = Interval::new(940_000 + i, st, st + 8);
            session.try_insert(s).unwrap();
            oracle_b.insert(s);
        }
        assert!(session.delete(&w.data[0]));
        oracle_b.delete(w.data[0].id);
        let bytes_b = session.snapshot_bytes().unwrap();
        assert_ne!(bytes_a, bytes_b, "states A and B must differ");

        // one counting pass learns how many write fault points the save
        // has (and commits B — put A back before the matrix runs)
        let mut counter = FaultIo::counting(StdSnapshotIo::default());
        session.snapshot_with(&path, &mut counter).unwrap();
        let write_points = counter.writes();
        assert!(write_points >= 1, "K={k}: save issued no writes");
        std::fs::write(&path, &bytes_a).unwrap();

        // pre-commit faults: the save errors, the temp is cleaned up,
        // and the previous snapshot restores bit-identically
        let mut cases: Vec<(FaultKind, usize)> = vec![(FaultKind::FsyncFail, 0)];
        for at in 0..write_points {
            cases.push((FaultKind::ShortWrite, at));
            cases.push((FaultKind::NoSpace, at));
        }
        for (kind, at) in cases {
            let mut io = FaultIo::failing(StdSnapshotIo::default(), kind, at, 7);
            assert!(
                session.snapshot_with(&path, &mut io).is_err(),
                "K={k} {kind:?}@{at}: save must report the fault"
            );
            assert!(
                tmp_siblings(&path).is_empty(),
                "K={k} {kind:?}@{at}: temp file leaked"
            );
            let mut back = Session::restore(&path)
                .unwrap_or_else(|e| panic!("K={k} {kind:?}@{at}: restore failed: {e}"));
            assert_eq!(
                back.snapshot_bytes().unwrap(),
                bytes_a,
                "K={k} {kind:?}@{at}: pre-crash snapshot not bit-identical"
            );
        }

        // a torn rename: the commit landed but the save reports failure
        // — recovery must find a valid snapshot either way (here: B)
        let mut io = FaultIo::failing(StdSnapshotIo::default(), FaultKind::TornRename, 0, 7);
        assert!(session.snapshot_with(&path, &mut io).is_err());
        let mut back = Session::restore(&path)
            .unwrap_or_else(|e| panic!("K={k}: post-torn-rename restore failed: {e}"));
        assert_eq!(
            back.snapshot_bytes().unwrap(),
            bytes_b,
            "K={k}: torn rename must leave the committed snapshot"
        );
        expect_same_results(
            &format!("restored twin after torn rename K={k}"),
            back.pool(),
            &oracle_b,
            &w.queries,
        );

        // read-side bit rot: every seeded flipped bit must surface as a
        // typed RestoreError — zero panics, zero silent corruption
        for seed in 0..16u64 {
            let mut io = FaultIo::failing(StdSnapshotIo::default(), FaultKind::BitFlip, 0, seed);
            assert!(
                Session::restore_with(&path, &mut io).is_err(),
                "K={k} seed={seed}: a flipped bit restored silently"
            );
        }
    }
}

/// A fresh server bootstraps from a live peer's snapshot stream over
/// real TCP: pull the snapshot bytes with `snapshot_fetch`, restore a
/// twin session from them, serve the twin from a second server, and
/// differential-check that both servers answer every seeded query
/// identically.
#[test]
fn tcp_peer_bootstrap_from_a_snapshot_stream() {
    use std::net::{TcpListener, TcpStream};
    let w = fuzz::workload(0xFA02, DOM, 500, 24, 0);
    let mut session = Session::with_retune(
        build_sharded(&w.data, 4, SubsConfig::full()),
        RetunePolicy::Off,
    );
    // post-build churn so the snapshot barrier has something to seal
    session
        .try_insert(Interval::new(950_000, 100, 900))
        .unwrap();
    assert!(session.delete(&w.data[1]));
    let live = session.len();
    let mut server_a = Server::start(session, ServeConfig::default()).unwrap();
    let addr = server_a
        .listen_tcp(TcpListener::bind("127.0.0.1:0").unwrap())
        .unwrap();
    // peer bootstrap: fetch the snapshot over the wire, restore a twin
    let mut boot = Client::new(TcpStream::connect(addr).unwrap()).unwrap();
    let bytes = boot.snapshot_fetch().unwrap();
    let twin = Session::restore_bytes(&bytes).unwrap_or_else(|e| panic!("restore: {e}"));
    assert_eq!(twin.len(), live, "twin lost or invented intervals");
    let server_b = Server::start(twin, ServeConfig::default()).unwrap();
    let (b_client_end, b_server_end) = duplex();
    server_b.attach(b_server_end);
    let mut client_b = Client::new(b_client_end).unwrap();
    let mut client_a = Client::new(TcpStream::connect(addr).unwrap()).unwrap();
    for &q in &w.queries {
        let mut a = client_a.query(q).unwrap();
        let mut b = client_b.query(q).unwrap();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "bootstrapped peer diverged on {q:?}");
    }
    drop((client_a, client_b, boot));
    server_a.shutdown();
    server_b.shutdown();
}

// ---- re-tune correctness properties --------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // a shard resealed at any m' != m answers identically for every
    // sink type (enumerate / count / exists / first-k, solo + batched)
    #[test]
    fn retuned_shard_is_bit_identical_for_all_sinks(
        data in test_support::intervals(DOM),
        qs in test_support::queries(DOM, 10),
        shard_sel in 0usize..8,
        m_new in 1u32..13,
    ) {
        for k in shard_counts() {
            let mut retuned = build_sharded(&data, k, SubsConfig::full());
            IntervalIndex::seal(&mut retuned);
            let baseline = retuned.clone();
            let j = shard_sel % retuned.shard_count();
            prop_assert!(retuned.retune_shard(j, m_new));
            test_support::assert_indexes_agree(
                &format!("retuned(m'={m_new}) vs untouched K={k}"),
                &retuned,
                &baseline,
                &qs,
            )?;
        }
    }

    // the cost model's chosen m' never loses to the old m on the
    // observed histogram (beyond its convergence tolerance), for
    // arbitrary observed mixes and arbitrary starting m
    #[test]
    fn cost_model_choice_never_loses_on_the_observed_mix(
        extents in prop::collection::vec(0u64..(1 << 24), 1..40),
        current in 1u32..22,
        n in 1_000u64..10_000_000,
        lambda_s in 1u64..3_000_000,
    ) {
        let tol = 0.03;
        let input = ModelInput { n, lambda_s: lambda_s as f64, lambda_q: 0.0, span: 1 << 24 };
        let mix = ExtentMix::from_extents(&extents);
        let current = current.min(input.max_m());
        let chosen = retuned_m(&input, &Betas::DEFAULT, tol, &mix, current);
        prop_assert!(chosen >= 1 && chosen <= input.max_m());
        let lost = mix_cost(&input, &Betas::DEFAULT, chosen, &mix)
            <= mix_cost(&input, &Betas::DEFAULT, current, &mix) * (1.0 + tol) + 1e-18;
        prop_assert!(lost, "m'={chosen} loses to m={current} on the observed mix");
    }
}

/// The end-to-end re-tune property at session level: a skewed mix plus
/// a dirty reseal must never change results, and when the model moves
/// `m`, the move is recorded and the new `m` wins (or ties within
/// tolerance) on the session's own observed histogram.
#[test]
fn session_retune_end_to_end_preserves_results() {
    let w = fuzz::workload(0x1202, DOM, 500, 32, 0);
    for k in shard_counts() {
        // deliberately coarse shards: m = 4 is mis-tuned for stabs
        let sharded = ShardedIndex::build_with_domain(&w.data, 0, DOM - 1, k, |slice, lo, hi| {
            HintMSubs::build_with_domain(slice, Domain::new(lo, hi, 4), SubsConfig::full())
        });
        let mut session = Session::with_retune(sharded, RetunePolicy::OnSeal);
        let mut oracle = ScanOracle::new(&w.data);
        // enough stabs that every shard clears MIN_RETUNE_OBSERVATIONS
        // even at the widest K in the sweep
        for i in 0..512u64 {
            let q = RangeQuery::stab((i * 67) % DOM);
            assert_eq!(session_sorted(&session, q), oracle.query_sorted(q));
        }
        // dirty every shard so the reseal may re-tune each of them
        for j in 0..session.pool().shard_count() as u64 {
            let (lo, hi) = session.pool().shard_bounds()[j as usize];
            let s = Interval::new(910_000 + j, lo, hi.min(lo + 3));
            session.try_insert(s).unwrap();
            oracle.insert(s);
        }
        assert!(session.seal_if_dirty());
        for ev in session.retunes() {
            assert_ne!(ev.from, ev.to, "recorded a no-op retune");
            assert_eq!(ev.from, 4);
        }
        // stabs on short-interval data want a deeper hierarchy: with
        // enough observations the model must move at least one shard
        assert!(
            !session.retunes().is_empty(),
            "K={k}: stab-heavy mix left every coarse shard untouched"
        );
        expect_same_results(
            &format!("session after retune K={k}"),
            session.pool(),
            &oracle,
            &w.queries,
        );
    }
}

/// The dispatch-stop fix, end to end: a saturated first-k batch stops
/// dispatching sub-queries to the remaining shard workers (counted by
/// the pool's dispatch stats), at unchanged results.
#[test]
fn saturated_first_k_stops_dispatching_across_shards() {
    let w = fuzz::workload(0x1203, DOM, 600, 0, 0);
    let session = Session::with_retune(
        build_sharded(&w.data, 4, SubsConfig::full()),
        RetunePolicy::Off,
    );
    let oracle = ScanOracle::new(&w.data);
    let full = RangeQuery::new(0, DOM - 1);
    let want = oracle.query_sorted(full);
    assert!(want.len() >= 8, "workload too sparse for the test");
    let queries = vec![full; 6];
    let mut sinks: Vec<FirstK> = queries.iter().map(|_| FirstK::new(2)).collect();
    let before = session.pool().stats();
    session.query_batch_merge(&queries, &mut sinks);
    let after = session.pool().stats();
    for s in &sinks {
        assert_eq!(s.len(), 2);
        for id in s.ids() {
            assert!(want.binary_search(id).is_ok());
        }
    }
    assert_eq!(after.routed - before.routed, 6 * 4, "full-domain routing");
    assert_eq!(
        after.dispatched - before.dispatched,
        6,
        "saturated queries must only reach the first shard"
    );
    assert_eq!(
        after.skipped - before.skipped,
        6 * 3,
        "the other three shards' sub-queries must be skipped, not scanned"
    );
}

/// The replicated pool end to end: a `with_read_replicas(4)` pool over
/// a seeded workload answers bit-identically to its unreplicated direct
/// twin on every read path — across writes, a reseal (which publishes
/// fresh epochs), and a re-tune — and epochs pinned before the mutation
/// keep answering from their point-in-time image (the drain property
/// the serve scheduler relies on for torn-free reads).
#[test]
fn replicated_pool_differential_against_unreplicated_twin() {
    use hint_suite::hint_core::{query_epoch_pins, ExtentMix};
    let w = fuzz::workload(0xEF0C, DOM, 700, 16, 0);
    for k in shard_counts() {
        let mut direct = build_sharded(&w.data, k, SubsConfig::update_friendly());
        direct.seal();
        let mut pool = ShardPool::with_read_replicas(direct.clone(), 4);
        assert_eq!(pool.read_replicas(), 4);
        expect_same_results(
            &format!("replicated K={k} sealed"),
            &pool,
            &ScanOracle::new(&w.data),
            &w.queries,
        );
        // pin the published epochs, then mutate + reseal + re-tune
        let pins = pool.pin_epochs().expect("replicated pool has epochs");
        let pre: Vec<Vec<IntervalId>> = w
            .queries
            .iter()
            .take(8)
            .map(|&q| ScanOracle::new(&w.data).query_sorted(q))
            .collect();
        let mut oracle = ScanOracle::new(&w.data);
        let extra = Interval::new(870_000, 100, DOM - 100);
        pool.insert(extra);
        oracle.insert(extra);
        assert!(pool.delete(&w.data[3]));
        oracle.delete(w.data[3].id);
        pool.seal_all();
        pool.retune_shard(k / 2, ExtentMix::from_extents(&[0; 32]));
        expect_same_results(
            &format!("replicated K={k} post-mutation"),
            &pool,
            &oracle,
            &w.queries,
        );
        for (q, want) in w.queries.iter().take(8).zip(&pre) {
            let mut got: Vec<IntervalId> = Vec::new();
            query_epoch_pins(&pins, *q, &mut got);
            got.sort_unstable();
            assert_eq!(&got, want, "K={k}: drained epoch moved on {q:?}");
        }
    }
}

/// Two sessions racing saves to one path: with per-save unique temp
/// files the committed snapshot is always exactly one racer's state
/// (never bytes interleaved from both), it restores cleanly, and no
/// temp siblings leak.
#[test]
fn concurrent_snapshot_saves_commit_a_coherent_file() {
    use hint_suite::hint_core::hintm::snapshot::tmp_siblings;
    let dir = std::env::temp_dir().join(format!("hint-save-race-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("race.snap");
    let w = fuzz::workload(0x5A7E, DOM, 500, 8, 0);
    let mut a = Session::with_retune(
        build_sharded(&w.data, 2, SubsConfig::update_friendly()),
        RetunePolicy::Off,
    );
    let mut b = Session::with_retune(
        build_sharded(&w.data[..300], 3, SubsConfig::update_friendly()),
        RetunePolicy::Off,
    );
    let bytes_a = a.snapshot_bytes().unwrap();
    let bytes_b = b.snapshot_bytes().unwrap();
    assert_ne!(bytes_a, bytes_b);
    std::thread::scope(|s| {
        for session in [&mut a, &mut b] {
            s.spawn(|| {
                for _ in 0..6 {
                    session.snapshot(&path).unwrap();
                }
            });
        }
    });
    let mut restored = Session::restore(&path).unwrap();
    let got = restored.snapshot_bytes().unwrap();
    assert!(
        got == bytes_a || got == bytes_b,
        "committed file is neither racer's snapshot"
    );
    assert!(tmp_siblings(&path).is_empty(), "temp files leaked");
    std::fs::remove_dir_all(&dir).ok();
}
