//! Deterministic seeded fuzz-regression corpus.
//!
//! Property tests shrink a failure to one input and then move on; this
//! file makes such failures *permanent*. Every test replays one fixed
//! RNG seed through `test_support::fuzz::workload` — a pure function of
//! the seed, stable across platforms and releases — and runs the full
//! differential battery (every index variant, sharded and unsharded,
//! static and under updates) against the oracle.
//!
//! **Convention:** when a proptest or fuzz run ever fails (locally or in
//! CI), shrink it, fix the bug, then add the seed here as
//! `regress_seed_0x<SEED>` with a comment naming the bug it caught. The
//! seeds below bootstrap the corpus with a spread of workload shapes;
//! they must stay green forever.

use hint_suite::hint_core::{
    Domain, Hint, HintMBase, HintMSubs, Interval, IntervalIndex, QuerySink, RangeQuery, ScanOracle,
    Session, ShardedIndex, SubsConfig,
};
use serve::{duplex, Client, DuplexTransport, ServeConfig, Server};
use std::io::Write as _;
use test_support::{expect_same_results, fuzz, shard_counts};

/// Replays one seed: static differential over the initial data, then an
/// update interleaving with a mid-stream reseal, then a final
/// differential sweep — across the core variants and every shard count.
fn replay(seed: u64) {
    let w = fuzz::workload(seed, 4_096, 160, 24, 48);
    let dom = Domain::new(0, w.dom - 1, 9);
    let oracle = ScanOracle::new(&w.data);

    // static differential: unsharded variants
    expect_same_results("hint", &Hint::build(&w.data, 10), &oracle, &w.queries);
    expect_same_results(
        "hint-m-base",
        &HintMBase::build_with_domain(&w.data, dom),
        &oracle,
        &w.queries,
    );
    let mut subs = HintMSubs::build_with_domain(&w.data, dom, SubsConfig::full());
    expect_same_results("hint-m-subs", &subs, &oracle, &w.queries);
    subs.seal();
    expect_same_results("hint-m-subs-sealed", &subs, &oracle, &w.queries);

    // static differential: sharded, every K in the sweep
    for k in shard_counts() {
        let mut sharded = ShardedIndex::build_with_domain(&w.data, 0, w.dom - 1, k, |s, lo, hi| {
            HintMSubs::build_with_domain(s, Domain::new(lo, hi, 9), SubsConfig::full())
        });
        expect_same_results("sharded", &sharded, &oracle, &w.queries);
        IntervalIndex::seal(&mut sharded);
        expect_same_results("sharded-sealed", &sharded, &oracle, &w.queries);
    }

    // update interleaving with reseal, sharded vs oracle
    for k in shard_counts() {
        let mut sharded = ShardedIndex::build_with_domain(&w.data, 0, w.dom - 1, k, |s, lo, hi| {
            HintMSubs::build_with_domain(s, Domain::new(lo, hi, 9), SubsConfig::update_friendly())
        });
        let mut oracle = ScanOracle::new(&w.data);
        let mut live = w.data.clone();
        let mut next_id = 900_000u64;
        for (i, &(is_insert, pos, len)) in w.ops.iter().enumerate() {
            if is_insert || live.is_empty() {
                let s = Interval::new(next_id, pos, (pos + len).min(w.dom - 1));
                next_id += 1;
                sharded.insert(s);
                oracle.insert(s);
                live.push(s);
            } else {
                let victim = live.swap_remove((pos as usize) % live.len());
                assert_eq!(
                    sharded.delete(&victim),
                    oracle.delete(victim.id),
                    "seed {seed:#x} K={k}: delete divergence on {victim:?}"
                );
            }
            if i == w.ops.len() / 2 {
                IntervalIndex::seal(&mut sharded);
            }
        }
        expect_same_results("sharded after updates", &sharded, &oracle, &w.queries);
        IntervalIndex::seal(&mut sharded);
        expect_same_results("sharded after final reseal", &sharded, &oracle, &w.queries);
    }
}

// ---- the corpus ----------------------------------------------------
// Bootstrap seeds covering a spread of generated workload shapes. Add
// every seed that ever fails, with a comment naming the bug it caught.

#[test]
fn regress_seed_0x2a() {
    replay(0x2a);
}

#[test]
fn regress_seed_0xdead_beef() {
    replay(0xdead_beef);
}

#[test]
fn regress_seed_0x5eed_0001() {
    replay(0x5eed_0001);
}

#[test]
fn regress_seed_0xc0ffee() {
    replay(0xc0ffee);
}

#[test]
fn regress_seed_0x7fff_ffff_ffff_ffff() {
    // extreme seed value: exercises the SplitMix64 stream far from zero
    replay(0x7fff_ffff_ffff_ffff);
}

/// Replays one seed through the serving subsystem: the workload's data
/// behind a wire-protocol server (in-memory duplex transport), the full
/// differential battery against the oracle through the encode →
/// schedule → batch → demux → decode path, then a seeded garbage stream
/// at the same server — which must neither panic it nor disturb a
/// subsequent clean connection. Mirrors the unsharded/sharded replay
/// convention above: any serving or codec seed that ever fails is added
/// below forever.
fn replay_serve(seed: u64) {
    let w = fuzz::workload(seed, 4_096, 160, 24, 0);
    let oracle = ScanOracle::new(&w.data);
    for k in shard_counts() {
        let sharded = ShardedIndex::build_with_domain(&w.data, 0, w.dom - 1, k, |s, lo, hi| {
            HintMSubs::build_with_domain(s, Domain::new(lo, hi, 9), SubsConfig::full())
        });
        let server = Server::start(Session::new(sharded), ServeConfig::default()).unwrap();

        // the served index must pass the same differential battery as a
        // direct one
        struct Remote(std::cell::RefCell<Client<DuplexTransport>>, usize);
        impl IntervalIndex for Remote {
            fn query_sink(&self, q: RangeQuery, sink: &mut dyn QuerySink) {
                self.0
                    .borrow_mut()
                    .query_sink(q, sink)
                    .expect("served query");
            }
            fn size_bytes(&self) -> usize {
                0
            }
            fn len(&self) -> usize {
                self.1
            }
        }
        let (client_end, server_end) = duplex();
        server.attach(server_end);
        let remote = Remote(
            std::cell::RefCell::new(Client::new(client_end).unwrap()),
            w.data.len(),
        );
        expect_same_results("served", &remote, &oracle, &w.queries);
        drop(remote);

        // seeded garbage at the wire: per-connection errors, never a
        // server panic, and the next clean connection still answers
        let mut rng = fuzz::Rng::new(seed ^ 0xbad_c0de);
        let (raw_client, raw_server) = duplex();
        server.attach(raw_server);
        use serve::Transport;
        let (_r, mut wtr) = raw_client.split().unwrap();
        let junk: Vec<u8> = (0..64 + rng.below(128))
            .map(|_| (rng.next_u64() & 0xFF) as u8)
            .collect();
        let _ = wtr.write_all(&junk);
        drop(wtr);
        let (client_end, server_end) = duplex();
        server.attach(server_end);
        let mut clean = Client::new(client_end).unwrap();
        let got = clean
            .query(RangeQuery::new(0, w.dom - 1))
            .expect("server survived garbage");
        assert_eq!(got.len(), w.data.len(), "seed {seed:#x} K={k}");
        drop(clean);
        server.shutdown();
    }
}

// Bootstrap serving/codec seeds (none have failed yet; the convention
// is the same as above — every future shrunk serving failure lands
// here by its seed).

#[test]
fn regress_serve_seed_0x5e4e_0001() {
    replay_serve(0x5e4e_0001);
}

#[test]
fn regress_serve_seed_0xfeed_f00d() {
    replay_serve(0xfeed_f00d);
}

// Lifecycle seeds: the stateful insert/delete/seal/retune/query
// interleaving over the pooled session (driver in
// `test_support::lifecycle`, fuzz matrix in `tests/lifecycle.rs`).
// Bootstrap seeds below; every lifecycle seed that ever fails is added
// here by number, forever.

#[test]
fn regress_lifecycle_seed_0x11fe() {
    test_support::lifecycle::replay(0x11fe);
}

#[test]
fn regress_lifecycle_seed_0xl33t_a5() {
    test_support::lifecycle::replay(0x1337_00a5);
}

/// Replays one seed through the serve scheduler's AIMD batch-window
/// controller (`serve::WindowController` — pure and clock-free, so the
/// replay is bit-exact). The seed picks the controller bounds and then
/// drives three arrival regimes (steady trickle, bursty, bimodal)
/// through the same feed discipline the scheduler uses — `on_arrival`
/// per request, a full flush when the round fills the window, a
/// deadline flush otherwise — asserting after every step that the
/// window stays inside `[min_window, max_window]` and the derived delay
/// never exceeds `max_delay`. The tail then holds occupancy constant
/// and requires convergence to a tight band: a controller that
/// sawtooths or drifts re-creates the window-64 collapse the AIMD
/// design exists to prevent.
fn replay_controller(seed: u64) {
    use serve::{ControllerConfig, WindowController};
    let mut rng = fuzz::Rng::new(seed);
    let cfg = ControllerConfig {
        min_window: 1 + rng.below(4) as usize,
        max_window: 8 + rng.below(120) as usize,
        max_delay: std::time::Duration::from_micros(100 + rng.below(900)),
    };
    let mut c = WindowController::new(cfg);
    let cfg = c.config(); // post-repair bounds are the contract
    let mut now = 0u64;
    for regime in 0..3u32 {
        let base_gap = 1 + rng.below(50);
        for _ in 0..300 {
            let arrivals = match regime {
                0 => 1 + rng.below(3), // steady trickle
                1 => {
                    // bursty: long quiet runs, then a pile-up
                    if rng.below(8) == 0 {
                        32 + rng.below(64)
                    } else {
                        1
                    }
                }
                _ => {
                    // bimodal: alternating light and heavy rounds
                    if rng.below(2) == 0 {
                        1
                    } else {
                        16
                    }
                }
            } as usize;
            for _ in 0..arrivals {
                now += rng.below(base_gap * 2);
                c.on_arrival(now);
            }
            let w = c.window();
            assert!(
                (cfg.min_window..=cfg.max_window).contains(&w),
                "seed {seed:#x} regime {regime}: window {w} escaped [{}, {}]",
                cfg.min_window,
                cfg.max_window,
            );
            assert!(
                c.delay() <= cfg.max_delay,
                "seed {seed:#x} regime {regime}: delay {:?} above the {:?} cap",
                c.delay(),
                cfg.max_delay,
            );
            if arrivals >= w {
                c.on_flush(w, false);
            } else {
                c.on_flush(arrivals, true);
            }
        }
    }
    // convergence tail: constant occupancy must settle near itself
    let g = 4 + rng.below(40) as usize;
    let goal = g.min(cfg.max_window);
    let step = |c: &mut WindowController| {
        let w = c.window();
        if g >= w {
            c.on_flush(w, false);
        } else {
            c.on_flush(g, true);
        }
    };
    for _ in 0..400 {
        step(&mut c);
    }
    let (mut lo, mut hi) = (usize::MAX, 0usize);
    for _ in 0..32 {
        step(&mut c);
        lo = lo.min(c.window());
        hi = hi.max(c.window());
    }
    assert!(
        hi - lo <= 2 && lo + 1 >= goal && hi <= (goal + 2).min(cfg.max_window),
        "seed {seed:#x}: steady occupancy {g} did not converge \
         (tail band [{lo}, {hi}], goal {goal})",
    );
}

// Controller seeds. None have failed yet; every seeded controller
// property failure (from this battery or any future proptest over the
// AIMD policy) is shrunk and added here by its seed, forever.

#[test]
fn regress_controller_seed_0x41ad_0001() {
    replay_controller(0x41ad_0001);
}

#[test]
fn regress_controller_seed_0x41ad_0002() {
    replay_controller(0x41ad_0002);
}

#[test]
fn regress_controller_seed_0xb1b0_0003() {
    replay_controller(0xb1b0_0003);
}

#[test]
fn regress_controller_seed_0x7e11_7a1e() {
    // extreme-ish seed: drives the burst regime into the window cap
    replay_controller(0x7e11_7a1e);
}

/// Degenerate-workload replay: tiny domains, point intervals, and a
/// single-interval dataset — shapes that historically break routing and
/// boundary math first.
#[test]
fn regress_degenerate_shapes() {
    // single interval, stab queries
    let one = vec![Interval::new(0, 7, 7)];
    let oracle = ScanOracle::new(&one);
    for k in shard_counts() {
        let sharded = ShardedIndex::build_with(&one, k, |s, lo, hi| {
            HintMSubs::build_with_domain(s, Domain::new(lo, hi, 4), SubsConfig::full())
        });
        expect_same_results(
            "single-interval",
            &sharded,
            &oracle,
            &[
                hint_suite::hint_core::RangeQuery::stab(7),
                hint_suite::hint_core::RangeQuery::stab(6),
                hint_suite::hint_core::RangeQuery::new(0, 100),
            ],
        );
    }
    // two-value domain, everything overlaps everything
    let w = fuzz::workload(99, 2, 40, 10, 0);
    let oracle = ScanOracle::new(&w.data);
    for k in shard_counts() {
        let sharded = ShardedIndex::build_with_domain(&w.data, 0, 1, k, |s, lo, hi| {
            HintMSubs::build_with_domain(s, Domain::new(lo, hi, 1), SubsConfig::full())
        });
        expect_same_results("two-value-domain", &sharded, &oracle, &w.queries);
    }
}
