//! Table-10-style mixed workloads: every updatable index must stay
//! consistent with the oracle through a 90%-prefill / insert / delete /
//! query cycle, including the hybrid index across a forced merge.

use hint_suite::grid1d::Grid1D;
use hint_suite::hint_core::{
    Domain, HintMSubs, HybridHint, Interval, IntervalId, RangeQuery, ScanOracle, SubsConfig,
};
use hint_suite::interval_tree::IntervalTree;
use hint_suite::period_index::PeriodIndex;
use hint_suite::workloads::realistic::{RealDataset, RealisticConfig};

fn sorted(mut v: Vec<IntervalId>) -> Vec<IntervalId> {
    v.sort_unstable();
    v
}

fn mixed_cycle(data: Vec<Interval>, domain_max: u64) {
    let split = data.len() * 9 / 10;
    let (old, new) = data.split_at(split);

    let mut oracle = ScanOracle::new(old);
    let mut tree = IntervalTree::with_domain(0, domain_max);
    let mut grid = Grid1D::with_domain(0, domain_max, 64);
    let mut period = PeriodIndex::with_domain(0, domain_max, 16, 4);
    let dom = Domain::new(0, domain_max, 10);
    let mut subs = HintMSubs::build_with_domain(old, dom, SubsConfig::update_friendly());
    let mut hybrid = HybridHint::new(old, 0, domain_max, 10).with_merge_threshold(64);
    for &s in old {
        tree.insert(s);
        grid.insert(s);
        period.insert(s);
    }

    // interleave inserts and deletes
    let mut to_delete = old.iter().copied().step_by(7);
    for (i, &s) in new.iter().enumerate() {
        oracle.insert(s);
        tree.insert(s);
        grid.insert(s);
        period.insert(s);
        subs.insert(s);
        hybrid.insert(s);
        if i % 3 == 0 {
            if let Some(victim) = to_delete.next() {
                assert!(oracle.delete(victim.id));
                assert!(tree.delete(&victim));
                assert!(grid.delete(&victim));
                assert!(period.delete(&victim));
                assert!(subs.delete(&victim));
                assert!(hybrid.delete(&victim));
            }
        }
    }
    hybrid.merge();

    let step = (domain_max as usize / 200).max(1);
    for st in (0..domain_max).step_by(step) {
        let q = RangeQuery::new(st, (st + domain_max / 100).min(domain_max));
        let want = oracle.query_sorted(q);
        let mut buf = Vec::new();
        tree.query(q, &mut buf);
        assert_eq!(sorted(std::mem::take(&mut buf)), want, "tree {q:?}");
        grid.query(q, &mut buf);
        assert_eq!(sorted(std::mem::take(&mut buf)), want, "grid {q:?}");
        period.query(q, &mut buf);
        assert_eq!(sorted(std::mem::take(&mut buf)), want, "period {q:?}");
        subs.query(q, &mut buf);
        assert_eq!(sorted(std::mem::take(&mut buf)), want, "subs {q:?}");
        hybrid.query(q, &mut buf);
        assert_eq!(sorted(std::mem::take(&mut buf)), want, "hybrid {q:?}");
    }
}

#[test]
fn mixed_cycle_on_long_intervals() {
    let cfg = RealisticConfig::new(RealDataset::Books).with_scale(2048);
    let domain_max = cfg.domain() - 1;
    mixed_cycle(cfg.generate(), domain_max);
}

#[test]
fn mixed_cycle_on_short_intervals() {
    let cfg = RealisticConfig::new(RealDataset::Taxis).with_scale(32768);
    let domain_max = cfg.domain() - 1;
    mixed_cycle(cfg.generate(), domain_max);
}

#[test]
fn hybrid_auto_merge_during_heavy_inserts() {
    let data = RealisticConfig::new(RealDataset::Books)
        .with_scale(4096)
        .generate();
    let max = data.iter().map(|s| s.end).max().unwrap();
    let mut hybrid = HybridHint::new(&data, 0, max, 10).with_merge_threshold(50);
    let mut oracle = ScanOracle::new(&data);
    for i in 0..500u64 {
        let st = (i * 613) % (max - 100);
        let s = Interval::new(7_000_000 + i, st, st + 100);
        hybrid.insert(s);
        oracle.insert(s);
    }
    assert!(hybrid.delta_len() < 50, "auto-merge must bound the delta");
    for st in (0..max).step_by((max as usize / 100).max(1)) {
        let q = RangeQuery::new(st, (st + 500).min(max));
        let mut got = Vec::new();
        hybrid.query(q, &mut got);
        assert_eq!(sorted(got), oracle.query_sorted(q), "{q:?}");
    }
}
