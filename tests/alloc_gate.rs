//! Allocation gate for the hot query path: once sinks are warm, the
//! sealed batch walk must allocate a *constant* number of times per
//! batch — run-over-run growth means something on the read path (a
//! snapshot hook, an instrumentation layer, a leaked scratch buffer)
//! started allocating per query, which is exactly the regression the
//! snapshot I/O trait is required not to introduce. The solo
//! `query_sink` path into a pre-grown sink must allocate nothing at
//! all.
//!
//! Runs the index single-threaded (one shard, inline execution) so the
//! counter sees only the path under test, not worker-pool churn.

use hint_suite::hint_core::{Domain, HintMSubs, Interval, IntervalId, RangeQuery, SubsConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation and reallocation routed through the global
/// allocator. Frees are not counted — the gate is about acquisition on
/// the hot path, and `realloc` growth counts as an acquisition.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// The two gates share one global counter; run them one at a time or
/// either test's allocations show up in the other's deltas (a rare but
/// real flake under the default parallel test runner).
static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

const DOM: u64 = 1 << 14;

fn build() -> HintMSubs {
    let data: Vec<Interval> = (0..4_000u64)
        .map(|i| {
            let st = (i * 193) % (DOM - 512);
            Interval::new(i, st, st + 1 + (i * 37) % 500)
        })
        .collect();
    HintMSubs::build_with_domain(&data, Domain::new(0, DOM - 1, 10), SubsConfig::full())
}

fn batch() -> Vec<RangeQuery> {
    (0..64u64)
        .map(|i| {
            let st = (i * 251) % (DOM - 600);
            RangeQuery::new(st, st + 40 + (i * 17) % 500)
        })
        .collect()
}

/// Steady-state batched queries allocate a constant amount per batch:
/// after one warm-up run (sinks grow to capacity), identical batches
/// must keep costing the same number of allocations — zero
/// run-over-run growth. The global counter also sees the test
/// harness's own threads (progress I/O lands at arbitrary moments), so
/// the gate compares the *minimum* over a few runs: sporadic harness
/// noise inflates individual runs but not the floor, while a genuine
/// per-batch leak inflates every run, floor included.
#[test]
fn batch_query_allocations_are_flat_in_steady_state() {
    let _solo = GATE.lock().unwrap_or_else(|p| p.into_inner());
    let index = build();
    let queries = batch();
    let mut sinks: Vec<Vec<IntervalId>> = queries.iter().map(|_| Vec::new()).collect();
    let run = |sinks: &mut Vec<Vec<IntervalId>>| {
        for s in sinks.iter_mut() {
            s.clear(); // keeps capacity: a warm sink never regrows
        }
        let before = allocs();
        index.query_batch_sinks(&queries, &mut sinks.iter_mut().collect::<Vec<_>>(), false);
        allocs() - before
    };
    let warmup = run(&mut sinks);
    let floor = |sinks: &mut Vec<Vec<IntervalId>>| (0..5).map(|_| run(sinks)).min().unwrap();
    let first = floor(&mut sinks);
    let second = floor(&mut sinks);
    assert_eq!(
        first, second,
        "per-batch allocation floor drifted in steady state: warmup={warmup}"
    );
    assert!(
        first <= warmup,
        "steady-state batches allocate more than the cold run: warmup={warmup}, floor={first}"
    );
}

/// The solo sealed read path is allocation-free once the sink is warm:
/// `query_sink` into a cleared-but-capacitated `Vec` must not touch the
/// allocator at all.
#[test]
fn warm_solo_query_sink_allocates_nothing() {
    let _solo = GATE.lock().unwrap_or_else(|p| p.into_inner());
    let index = build();
    let queries = batch();
    let mut out: Vec<IntervalId> = Vec::new();
    for &q in &queries {
        index.query_sink(q, &mut out); // warm-up grows `out` once
    }
    out.clear();
    let before = allocs();
    for &q in &queries {
        out.clear();
        index.query_sink(q, &mut out);
    }
    let delta = allocs() - before;
    assert_eq!(
        delta,
        0,
        "warm solo query_sink touched the allocator {delta} times over {} queries",
        queries.len()
    );
}
