//! Edge-case behaviour that the paper's description leaves implicit:
//! empty indexes, duplicate endpoints, whole-domain intervals, degenerate
//! domains, queries clamped at domain borders, and tombstone-heavy states.

use hint_suite::hint_core::{
    CfLayout, Domain, Hint, HintCf, HintMBase, HintMSubs, HintOptions, HybridHint, Interval,
    RangeQuery, ScanOracle, SubsConfig,
};

#[test]
fn empty_index_with_explicit_domain_returns_nothing() {
    let domain = Domain::new(0, 1023, 8);
    let hint = Hint::build_with_domain(&[], domain, HintOptions::default());
    let subs = HintMSubs::build_with_domain(&[], domain, SubsConfig::full());
    let base = HintMBase::build_with_domain(&[], domain);
    let mut out = Vec::new();
    for q in [RangeQuery::new(0, 1023), RangeQuery::stab(512)] {
        hint.query(q, &mut out);
        subs.query(q, &mut out);
        base.query(q, &mut out);
        assert!(out.is_empty(), "{q:?}");
    }
    assert!(hint.is_empty() && subs.is_empty() && base.is_empty());
    assert_eq!(hint.entries(), 0);
}

#[test]
fn identical_intervals_all_reported() {
    // 50 records with the exact same endpoints but distinct ids
    let data: Vec<Interval> = (0..50).map(|i| Interval::new(i, 100, 200)).collect();
    let idx = Hint::build(&data, 8);
    let mut out = Vec::new();
    idx.query(RangeQuery::new(150, 150), &mut out);
    out.sort_unstable();
    assert_eq!(out, (0..50).collect::<Vec<_>>());
    out.clear();
    idx.query(RangeQuery::new(0, 99), &mut out);
    assert!(out.is_empty());
}

#[test]
fn whole_domain_intervals_live_at_the_root() {
    let mut data: Vec<Interval> = (0..10).map(|i| Interval::new(i, 0, 4095)).collect();
    data.push(Interval::new(99, 2000, 2005));
    let idx = Hint::build(&data, 10);
    // the root partition holds the 10 full-span intervals once each; the
    // short interval lands in one or two partitions
    assert!(
        idx.entries() == 11 || idx.entries() == 12,
        "{}",
        idx.entries()
    );
    let mut out = Vec::new();
    idx.stab(0, &mut out);
    assert_eq!(out.len(), 10);
    out.clear();
    idx.query(RangeQuery::new(2001, 2002), &mut out);
    assert_eq!(out.len(), 11);
}

#[test]
fn single_value_domain() {
    let data = vec![Interval::new(1, 7, 7), Interval::new(2, 7, 7)];
    for layout in [CfLayout::Dense, CfLayout::Sparse] {
        let cf = HintCf::build_exact(&data, layout);
        let mut out = Vec::new();
        cf.stab(7, &mut out);
        assert_eq!(out.len(), 2, "{layout:?}");
    }
    let hint = Hint::build(&data, 10);
    let mut out = Vec::new();
    hint.query(RangeQuery::new(0, 100), &mut out);
    assert_eq!(out.len(), 2);
}

#[test]
fn queries_straddling_domain_borders_are_clamped() {
    let data = vec![Interval::new(1, 1000, 2000), Interval::new(2, 1500, 1600)];
    let idx = Hint::build(&data, 8);
    let mut out = Vec::new();
    idx.query(RangeQuery::new(0, u64::MAX), &mut out);
    assert_eq!(out.len(), 2);
    out.clear();
    idx.query(RangeQuery::new(0, 999), &mut out);
    assert!(out.is_empty());
    out.clear();
    idx.query(RangeQuery::new(2001, u64::MAX), &mut out);
    assert!(out.is_empty());
    out.clear();
    idx.query(RangeQuery::new(0, 1000), &mut out);
    assert_eq!(out, vec![1]);
}

#[test]
fn tombstone_heavy_index_still_correct() {
    let data: Vec<Interval> = (0..400)
        .map(|i| Interval::new(i, i * 10, i * 10 + 500))
        .collect();
    let mut idx = Hint::build(&data, 10);
    let mut oracle = ScanOracle::new(&data);
    // delete 90% of everything
    for s in data.iter().filter(|s| s.id % 10 != 0) {
        assert!(idx.delete(s));
        assert!(oracle.delete(s.id));
    }
    assert_eq!(idx.len(), 40);
    for st in (0..4500u64).step_by(97) {
        let q = RangeQuery::new(st, st + 300);
        let mut got = Vec::new();
        idx.query(q, &mut got);
        got.sort_unstable();
        assert_eq!(got, oracle.query_sorted(q), "{q:?}");
    }
}

#[test]
fn hybrid_starting_empty_and_growing() {
    let mut idx = HybridHint::new(&[], 0, 10_000, 10).with_merge_threshold(100);
    let mut oracle = ScanOracle::new(&[]);
    assert!(idx.is_empty());
    for i in 0..350u64 {
        let st = (i * 29) % 9_000;
        let s = Interval::new(i, st, st + 100);
        idx.insert(s);
        oracle.insert(s);
    }
    assert_eq!(idx.len(), 350);
    for st in (0..10_000u64).step_by(111) {
        let q = RangeQuery::new(st, (st + 50).min(10_000));
        let mut got = Vec::new();
        idx.query(q, &mut got);
        got.sort_unstable();
        assert_eq!(got, oracle.query_sorted(q), "{q:?}");
    }
}

#[test]
fn adjacent_interval_boundaries_closed_semantics() {
    // two intervals touching end-to-start, plus one isolated point between
    let data = vec![
        Interval::new(1, 0, 100),
        Interval::new(2, 100, 200),
        Interval::new(3, 100, 100),
    ];
    let idx = Hint::build(&data, 8);
    let mut out = Vec::new();
    idx.stab(100, &mut out);
    out.sort_unstable();
    assert_eq!(out, vec![1, 2, 3]);
    out.clear();
    idx.stab(99, &mut out);
    assert_eq!(out, vec![1]);
    out.clear();
    idx.stab(101, &mut out);
    assert_eq!(out, vec![2]);
}

#[test]
fn build_parallel_on_tiny_inputs() {
    let data = vec![Interval::new(1, 5, 9)];
    for threads in [1, 4, 64] {
        let idx = Hint::build_parallel(&data, 6, HintOptions::default(), threads);
        let mut out = Vec::new();
        idx.query(RangeQuery::new(7, 8), &mut out);
        assert_eq!(out, vec![1], "threads={threads}");
    }
}
