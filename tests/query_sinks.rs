//! The `QuerySink` execution layer, validated across every index in the
//! workspace:
//!
//! * enumerate == count == exists against the `ScanOracle` for every
//!   variant, via the shared `test-support` differential harness;
//! * `FirstK` retains exactly `min(k, |result|)` ids, all of them real
//!   results, and terminates the scan early (measurably fewer emits than
//!   full enumeration);
//! * `query_batch` is bit-identical to independent `query_sink` calls;
//! * saturation is honoured by every index: after a saturating sink stops
//!   the scan, at most a bounded tail of extra emits arrived.

use hint_suite::grid1d::Grid1D;
use hint_suite::hint_core::{
    CfLayout, CollectSink, ConcurrentHint, ExistsSink, FirstK, FnSink, Hint, HintCf, HintMBase,
    HintMSubs, HybridHint, Interval, IntervalId, IntervalIndex, QuerySink, RangeQuery, ScanOracle,
    SubsConfig,
};
use hint_suite::interval_tree::IntervalTree;
use hint_suite::period_index::PeriodIndex;
use hint_suite::timeline_index::TimelineIndex;
use proptest::prelude::*;
use test_support::{assert_same_results_named, intervals_up_to, query};

/// Forwards to an inner sink while counting how many ids the index
/// actually emitted — the observable cost of a scan.
struct ProbeSink<S: QuerySink> {
    inner: S,
    emits: usize,
}

impl<S: QuerySink> ProbeSink<S> {
    fn new(inner: S) -> Self {
        Self { inner, emits: 0 }
    }
}

impl<S: QuerySink> QuerySink for ProbeSink<S> {
    fn emit(&mut self, id: IntervalId) {
        self.emits += 1;
        self.inner.emit(id);
    }
    fn is_saturated(&self) -> bool {
        self.inner.is_saturated()
    }
}

/// Builds every index in the workspace over `data` (domain `[0, max)`).
fn build_all(data: &[Interval], max: u64) -> Vec<(&'static str, Box<dyn IntervalIndex>)> {
    vec![
        ("oracle", Box::new(ScanOracle::new(data))),
        ("hint", Box::new(Hint::build(data, 10))),
        (
            "hint-cf",
            Box::new(HintCf::build_exact(data, CfLayout::Sparse)),
        ),
        ("hint-m-base", Box::new(HintMBase::build(data, 9))),
        (
            "hint-m-subs",
            Box::new(HintMSubs::build(data, 9, SubsConfig::full())),
        ),
        (
            "hint-m-subs-uf",
            Box::new(HintMSubs::build(data, 9, SubsConfig::update_friendly())),
        ),
        ("hint-sealed", {
            let mut i = Hint::build(data, 10);
            i.seal();
            Box::new(i)
        }),
        ("hint-m-base-sealed", {
            let mut i = HintMBase::build(data, 9);
            i.seal();
            Box::new(i)
        }),
        ("hint-m-subs-sealed", {
            let mut i = HintMSubs::build(data, 9, SubsConfig::full());
            i.seal();
            Box::new(i)
        }),
        ("hint-m-subs-sealed+overlay", {
            // sealed arenas plus a live unsealed overlay: the second half
            // of the data is inserted after the seal
            let split = data.len() / 2;
            let mut i = HintMSubs::build_with_domain(
                &data[..split.max(1)],
                hint_suite::hint_core::Domain::new(0, max, 9),
                SubsConfig::update_friendly(),
            );
            i.seal();
            for &s in &data[split.max(1)..] {
                i.insert(s);
            }
            Box::new(i)
        }),
        ("hybrid", {
            let split = data.len() / 2;
            let mut h = HybridHint::new(&data[..split.max(1)], 0, max, 9);
            for &s in &data[split.max(1)..] {
                h.insert(s);
            }
            Box::new(h)
        }),
        ("concurrent", {
            let c = ConcurrentHint::new(&data[..data.len() / 2 + 1], 0, max, 9);
            for &s in &data[data.len() / 2 + 1..] {
                c.insert(s);
            }
            Box::new(c)
        }),
        ("interval-tree", Box::new(IntervalTree::build(data))),
        ("grid1d", Box::new(Grid1D::build(data, 64))),
        ("period", Box::new(PeriodIndex::build(data, 16, 4))),
        (
            "timeline",
            Box::new(TimelineIndex::build_with_spacing(data, 32)),
        ),
    ]
}

fn intervals(max_val: u64) -> impl Strategy<Value = Vec<Interval>> {
    intervals_up_to(max_val, 120)
}

const DOM: u64 = 4_096;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // The central differential property: every variant agrees with the
    // oracle in every access mode (enumerate, duplicate/tombstone
    // freedom, count, exists) — one `assert_same_results` call per
    // variant replaces the old hand-rolled comparison loops.
    #[test]
    fn every_variant_matches_the_oracle_in_every_mode(
        data in intervals(DOM),
        q in query(DOM),
    ) {
        let oracle = ScanOracle::new(&data);
        for (name, idx) in build_all(&data, DOM) {
            assert_same_results_named(name, idx.as_ref(), &oracle, &[q])?;
        }
    }

    #[test]
    fn first_k_yields_real_results_and_respects_k(
        data in intervals(DOM),
        q in query(DOM),
        k in 0usize..12,
    ) {
        let oracle = ScanOracle::new(&data);
        let full = oracle.query_sorted(q);
        for (name, idx) in build_all(&data, DOM) {
            let mut sink = FirstK::new(k);
            idx.query_sink(q, &mut sink);
            let got = sink.into_vec();
            prop_assert_eq!(got.len(), k.min(full.len()), "{} FirstK({}) size on {:?}", name, k, q);
            for id in got {
                prop_assert!(
                    full.binary_search(&id).is_ok(),
                    "{} FirstK emitted non-result {} on {:?}", name, id, q
                );
            }
        }
    }

    #[test]
    fn query_batch_equals_independent_query_sink_calls(
        data in intervals(DOM),
        raw_queries in prop::collection::vec((0u64..DOM, 0u64..DOM), 1..16),
    ) {
        let queries: Vec<RangeQuery> = raw_queries
            .into_iter()
            .map(|(a, b)| RangeQuery::new(a.min(b), a.max(b)))
            .collect();
        for (name, idx) in build_all(&data, DOM) {
            let mut solo: Vec<Vec<IntervalId>> = queries
                .iter()
                .map(|&q| {
                    let mut v = Vec::new();
                    idx.query_sink(q, &mut v);
                    v
                })
                .collect();
            let mut bufs: Vec<Vec<IntervalId>> = vec![Vec::new(); queries.len()];
            {
                let mut sinks: Vec<&mut dyn QuerySink> =
                    bufs.iter_mut().map(|b| b as &mut dyn QuerySink).collect();
                idx.query_batch(&queries, &mut sinks);
            }
            if name == "timeline" {
                // the timeline index reports each checkpoint's survivors
                // from a HashSet, so even two identical query_sink calls
                // emit in different orders — compare as multisets
                for v in solo.iter_mut().chain(bufs.iter_mut()) {
                    v.sort_unstable();
                }
            }
            // bit-identical for every deterministic index: same ids in
            // the same emission order per sink
            prop_assert_eq!(&solo, &bufs, "{} batch != solo", name);
        }
    }

    #[test]
    fn sealed_indexes_agree_with_oracle_after_update_and_reseal(
        data in intervals(DOM),
        ops in prop::collection::vec((any::<bool>(), 0u64..DOM, 0u64..256), 0..24),
        q in query(DOM),
    ) {
        let domain = hint_suite::hint_core::Domain::new(0, DOM, 10);
        let mut subs = HintMSubs::build_with_domain(&data, domain, SubsConfig::full());
        let mut base = HintMBase::build_with_domain(&data, domain);
        let mut oracle = ScanOracle::new(&data);
        subs.seal();
        base.seal();
        let mut live: Vec<Interval> = data.clone();
        let mut next_id = 500_000u64;
        for (is_insert, st, len) in ops {
            if is_insert || live.is_empty() {
                let s = Interval::new(next_id, st, (st + len).min(DOM));
                next_id += 1;
                subs.insert(s);
                base.insert(s);
                oracle.insert(s);
                live.push(s);
            } else {
                let victim = live.swap_remove((st as usize) % live.len());
                prop_assert_eq!(subs.delete(&victim), oracle.delete(victim.id));
                prop_assert!(base.delete(&victim));
            }
        }
        for reseal in [false, true] {
            if reseal {
                subs.seal();
                base.seal();
            }
            assert_same_results_named(
                if reseal { "subs resealed" } else { "subs overlay" },
                &subs, &oracle, &[q],
            )?;
            assert_same_results_named(
                if reseal { "base resealed" } else { "base overlay" },
                &base, &oracle, &[q],
            )?;
        }
    }

    #[test]
    fn fn_sink_streams_the_full_result_set(
        data in intervals(DOM),
        q in query(DOM),
    ) {
        let idx = Hint::build(&data, 10);
        let mut streamed = Vec::new();
        {
            let mut sink = FnSink::new(|id| streamed.push(id));
            idx.query_sink(q, &mut sink);
        }
        streamed.sort_unstable();
        prop_assert_eq!(streamed, ScanOracle::new(&data).query_sorted(q));
    }
}

/// Dense deterministic workload: every saturating sink must do
/// measurably less work than full enumeration on a broad query.
#[test]
fn saturating_sinks_terminate_early() {
    let data: Vec<Interval> = (0..20_000)
        .map(|i| Interval::new(i, (i * 7) % 60_000, (i * 7) % 60_000 + 500))
        .collect();
    let q = RangeQuery::new(0, 59_999); // selects everything
    for (name, idx) in build_all(&data, 61_000) {
        let mut full = ProbeSink::new(CollectSink::new());
        idx.query_sink(q, &mut full);
        assert_eq!(full.inner.len(), data.len(), "{name} full enumeration");

        let mut first5 = ProbeSink::new(FirstK::new(5));
        idx.query_sink(q, &mut first5);
        assert_eq!(first5.inner.len(), 5, "{name} FirstK(5)");
        assert!(
            first5.emits * 10 < full.emits,
            "{name}: FirstK scanned {} of {} emits — no early exit",
            first5.emits,
            full.emits
        );

        let mut exists = ProbeSink::new(ExistsSink::new());
        idx.query_sink(q, &mut exists);
        assert!(exists.inner.found(), "{name} exists");
        assert!(
            exists.emits * 10 < full.emits,
            "{name}: exists scanned {} of {} emits — no early exit",
            exists.emits,
            full.emits
        );
    }
}

/// The trait-object path (`&mut dyn QuerySink`) and the monomorphized
/// inherent path must agree — the bench harness drives indexes through
/// `Box<dyn IntervalIndex>`.
#[test]
fn dyn_and_inherent_paths_agree() {
    let data: Vec<Interval> = (0..3_000)
        .map(|i| Interval::new(i, (i * 13) % 9_000, (i * 13) % 9_000 + (i % 70)))
        .collect();
    let idx = Hint::build(&data, 11);
    let boxed: Box<dyn IntervalIndex> = Box::new(Hint::build(&data, 11));
    for st in (0..9_000u64).step_by(311) {
        let q = RangeQuery::new(st, (st + 400).min(9_069));
        let mut direct = Vec::new();
        idx.query(q, &mut direct);
        let mut via_dyn = Vec::new();
        boxed.query_sink(q, &mut via_dyn);
        direct.sort_unstable();
        via_dyn.sort_unstable();
        assert_eq!(direct, via_dyn, "{q:?}");
        assert_eq!(boxed.count(q), direct.len(), "{q:?}");
        assert_eq!(boxed.exists(q), !direct.is_empty(), "{q:?}");
    }
}
