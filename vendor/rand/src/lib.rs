//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small slice of `rand 0.8` it actually uses: [`Rng::gen`],
//! [`Rng::gen_range`], [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`].
//! `StdRng` here is SplitMix64-seeded xoshiro256++ — deterministic under a
//! seed, which is all the workload generators require (they never need
//! cryptographic strength, only reproducibility).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform integer in `[0, bound)` via Lemire-style widening multiply
/// (modulo bias is negligible at 64 bits but cheap to avoid).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u64, usize, u32);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, as in `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from a range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
    /// Not the upstream `StdRng` algorithm, but deterministic under
    /// [`SeedableRng::seed_from_u64`], which is the only property the
    /// workload generators rely on.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 to spread the seed over the full state
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(5usize..=5);
            assert_eq!(y, 5);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
