//! Offline, API-compatible subset of the `bytes` crate.
//!
//! Backs [`Bytes`]/[`BytesMut`] with a plain `Vec<u8>` plus a read cursor —
//! no reference-counted slabs, no unsafe. Only the calls the workspace's
//! snapshot codec performs are provided.

#![forbid(unsafe_code)]

/// Read access to a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes into `dst`, advancing the cursor.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a little-endian `u64`, advancing the cursor.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Wraps a static byte slice.
    pub fn from_static(s: &'static [u8]) -> Self {
        Self {
            data: s.to_vec(),
            pos: 0,
        }
    }

    /// Total (unread) length in bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True if no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a new buffer holding the given sub-range of the unread
    /// bytes.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        Self {
            data: self.data[self.pos..][range].to_vec(),
            pos: 0,
        }
    }

    /// The unread bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.remaining(),
            "copy_to_slice past end of buffer"
        );
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u64s() {
        let mut w = BytesMut::with_capacity(24);
        w.put_slice(b"HDR!");
        w.put_u64_le(42);
        w.put_u64_le(u64::MAX);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 20);
        let mut hdr = [0u8; 4];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR!");
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_u64_le(), u64::MAX);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_is_relative_to_cursor() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        assert_eq!(b.slice(1..4).as_slice(), &[2, 3, 4]);
    }

    #[test]
    #[should_panic]
    fn overread_panics() {
        let mut b = Bytes::from(vec![1, 2]);
        let _ = b.get_u64_le();
    }
}
