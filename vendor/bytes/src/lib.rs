//! Offline, API-compatible subset of the `bytes` crate.
//!
//! Backs [`Bytes`]/[`BytesMut`] with a plain `Vec<u8>` plus a read cursor —
//! no reference-counted slabs, no unsafe. Only the calls the workspace's
//! codecs perform are provided: the snapshot codec's u64 round-trip plus
//! the `crates/serve` wire protocol's u8/u32/u64 little-endian accessors,
//! `advance`, and the split helpers.

#![forbid(unsafe_code)]

/// Read access to a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes into `dst`, advancing the cursor.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Advances the cursor by `cnt` bytes without reading them.
    ///
    /// # Panics
    /// Panics if fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);

    /// True if any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte, advancing the cursor.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`, advancing the cursor.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`, advancing the cursor.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`, advancing the cursor.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Wraps a static byte slice.
    pub fn from_static(s: &'static [u8]) -> Self {
        Self {
            data: s.to_vec(),
            pos: 0,
        }
    }

    /// Total (unread) length in bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True if no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a new buffer holding the given sub-range of the unread
    /// bytes.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        Self {
            data: self.data[self.pos..][range].to_vec(),
            pos: 0,
        }
    }

    /// Splits off and returns the first `at` unread bytes; `self` keeps
    /// the rest.
    ///
    /// # Panics
    /// Panics if fewer than `at` bytes remain.
    pub fn split_to(&mut self, at: usize) -> Self {
        assert!(at <= self.len(), "split_to past end of buffer");
        let head = self.data[self.pos..self.pos + at].to_vec();
        self.pos += at;
        Self { data: head, pos: 0 }
    }

    /// Splits off and returns everything from unread offset `at` on;
    /// `self` keeps the first `at` unread bytes.
    ///
    /// # Panics
    /// Panics if fewer than `at` bytes remain.
    pub fn split_off(&mut self, at: usize) -> Self {
        assert!(at <= self.len(), "split_off past end of buffer");
        let tail = self.data[self.pos + at..].to_vec();
        self.data.truncate(self.pos + at);
        Self { data: tail, pos: 0 }
    }

    /// The unread bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.remaining(),
            "copy_to_slice past end of buffer"
        );
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of buffer");
        self.pos += cnt;
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Drops the contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the
    /// rest.
    ///
    /// # Panics
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> Self {
        assert!(at <= self.len(), "split_to past end of buffer");
        let tail = self.data.split_off(at);
        Self {
            data: std::mem::replace(&mut self.data, tail),
        }
    }

    /// Splits off and returns everything from `at` on; `self` keeps the
    /// first `at` bytes.
    ///
    /// # Panics
    /// Panics if `at > len`.
    pub fn split_off(&mut self, at: usize) -> Self {
        assert!(at <= self.len(), "split_off past end of buffer");
        Self {
            data: self.data.split_off(at),
        }
    }

    /// Appends another buffer (the stub's `unsplit`: plain concatenation).
    pub fn unsplit(&mut self, mut other: Self) {
        self.data.append(&mut other.data);
    }

    /// The contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Self {
        b.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u64s() {
        let mut w = BytesMut::with_capacity(24);
        w.put_slice(b"HDR!");
        w.put_u64_le(42);
        w.put_u64_le(u64::MAX);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 20);
        let mut hdr = [0u8; 4];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR!");
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_u64_le(), u64::MAX);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn roundtrip_small_ints() {
        let mut w = BytesMut::new();
        w.put_u8(0xAB);
        w.put_u16_le(0xBEEF);
        w.put_u32_le(0xDEAD_BEEF);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 7);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert!(!r.has_remaining());
    }

    #[test]
    fn advance_skips_bytes() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        b.advance(3);
        assert_eq!(b.remaining(), 2);
        assert_eq!(b.get_u8(), 4);
    }

    #[test]
    #[should_panic]
    fn advance_past_end_panics() {
        let mut b = Bytes::from(vec![1, 2]);
        b.advance(3);
    }

    #[test]
    fn slice_is_relative_to_cursor() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        assert_eq!(b.slice(1..4).as_slice(), &[2, 3, 4]);
    }

    #[test]
    fn bytes_split_to_and_off() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        b.advance(1); // splits are relative to the cursor
        let head = b.split_to(2);
        assert_eq!(head.as_slice(), &[2, 3]);
        assert_eq!(b.as_slice(), &[4, 5]);
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        let tail = b.split_off(3);
        assert_eq!(b.as_slice(), &[1, 2, 3]);
        assert_eq!(tail.as_slice(), &[4]);
    }

    #[test]
    fn bytes_mut_split_and_unsplit() {
        let mut w = BytesMut::new();
        w.put_slice(&[1, 2, 3, 4, 5]);
        let head = w.split_to(2);
        assert_eq!(head.as_slice(), &[1, 2]);
        assert_eq!(w.as_slice(), &[3, 4, 5]);
        let tail = w.split_off(1);
        assert_eq!(w.as_slice(), &[3]);
        assert_eq!(tail.as_slice(), &[4, 5]);
        let mut joined = head;
        joined.unsplit(w);
        joined.unsplit(tail);
        assert_eq!(joined.as_slice(), &[1, 2, 3, 4, 5]);
        joined.clear();
        assert!(joined.is_empty());
    }

    #[test]
    fn vec_u8_is_a_buf_mut() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u32_le(7);
        v.put_u8(9);
        assert_eq!(v, vec![7, 0, 0, 0, 9]);
    }

    #[test]
    #[should_panic]
    fn overread_panics() {
        let mut b = Bytes::from(vec![1, 2]);
        let _ = b.get_u64_le();
    }
}
