//! Offline, API-compatible subset of `criterion`.
//!
//! Provides the macro/builder surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`, `bench_with_input`, `iter`, `iter_batched`) with a
//! simple mean-of-N wall-clock measurement instead of criterion's full
//! statistical pipeline. Results print one line per benchmark:
//!
//! ```text
//! group/name              time: 12.345 µs/iter (20 samples)
//! ```

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F>(&mut self, name: impl IntoBenchmarkId, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        let mut group = BenchmarkGroup {
            name: String::new(),
            sample_size,
            _parent: self,
        };
        group.bench_function(name.into_benchmark_id(), f);
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of measured samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(&self.name, &id.into_benchmark_id().0);
        self
    }

    /// Runs one benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        b.report(&self.name, &id.into_benchmark_id().0);
        self
    }

    /// Ends the group (criterion prints summaries here; we print per
    /// benchmark, so this is a no-op kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self(format!("{function}/{parameter}"))
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Conversion into [`BenchmarkId`] (strings or explicit ids).
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Batch-size hint for [`Bencher::iter_batched`] (measurement here is
/// per-batch regardless, so the variants only document intent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output; many iterations per batch.
    SmallInput,
    /// Large setup output; one iteration per batch.
    LargeInput,
    /// Re-run setup for every iteration.
    PerIteration,
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures a routine: a short warm-up, then `sample_size` timed
    /// runs.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        for _ in 0..2 {
            black_box(routine());
        }
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Measures a routine whose input is rebuilt by `setup` before every
    /// timed run (setup time is excluded).
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }

    fn report(&self, group: &str, name: &str) {
        let label = if group.is_empty() {
            name.to_string()
        } else {
            format!("{group}/{name}")
        };
        if self.samples.is_empty() {
            println!("{label:<48} (no measurement)");
            return;
        }
        let mean = self.samples.iter().sum::<Duration>().as_secs_f64() / self.samples.len() as f64;
        println!(
            "{label:<48} time: {} ({} samples)",
            fmt_secs(mean),
            self.samples.len()
        );
    }
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s/iter")
    } else if s >= 1e-3 {
        format!("{:.3} ms/iter", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs/iter", s * 1e6)
    } else {
        format!("{:.1} ns/iter", s * 1e9)
    }
}

/// Declares a benchmark group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 7), &7u64, |b, &k| {
            b.iter(|| k * 2)
        });
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 32],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    criterion_group!(unit_benches, sample_bench);

    #[test]
    fn group_runs_everything() {
        unit_benches();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }
}
