//! Offline, API-compatible subset of `proptest`.
//!
//! Supports the slice of the proptest API the workspace's property tests
//! use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(ProptestConfig::with_cases(N))]` header), range and
//! tuple strategies, [`collection::vec`], [`Strategy::prop_map`],
//! [`arbitrary::any`] for `bool` and [`sample::Index`], and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics
//! with the generated inputs' debug formatting left to the assertion
//! message. Generation is deterministic per test (the RNG is seeded from
//! the test's name), so failures reproduce across runs.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.generate(rng))
        }
    }

    /// A strategy that always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy over empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u64, u32, usize, u8, u16);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `size` and elements
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "vec strategy over empty size range");
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling helper types.

    /// An index into a collection whose length is not known at generation
    /// time; resolve it with [`Index::index`].
    #[derive(Debug, Clone, Copy)]
    pub struct Index(pub(crate) u64);

    impl Index {
        /// Maps this abstract index onto a collection of length `len`.
        ///
        /// # Panics
        /// Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> crate::sample::Index {
            crate::sample::Index(rng.next_u64())
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod test_runner {
    //! Test execution configuration and plumbing.

    /// Per-`proptest!`-block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was vetoed by `prop_assume!` — try another input.
        Reject(String),
        /// A `prop_assert*!` failed — the property is violated.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic RNG driving value generation (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the RNG from a test name (and the `PROPTEST_SEED`
        /// environment variable, if set) so each test has its own
        /// reproducible stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325; // FNV-1a
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            if let Ok(seed) = std::env::var("PROPTEST_SEED") {
                if let Ok(s) = seed.parse::<u64>() {
                    h ^= s;
                }
            }
            Self { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)` (`0` when `bound == 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                return 0;
            }
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

/// `prop::` path namespace, as re-exported by the real crate's prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::strategy;
}

/// The usual imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Each `#[test] fn name(arg in strategy, ...)`
/// becomes a regular `#[test]` that generates inputs and runs the body
/// until the configured number of cases pass.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        #[test]
        fn $name:ident ( $( $arg:pat_param in $strat:expr ),* $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < cfg.cases {
                attempts += 1;
                assert!(
                    attempts <= cfg.cases.saturating_mul(20).max(1_000),
                    "proptest {}: too many rejected cases ({} rejects for {} passes)",
                    stringify!($name), attempts - accepted, accepted,
                );
                $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng); )*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest {} failed (case {}): {}", stringify!($name), accepted, msg)
                    }
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), format!($($fmt)+), a, b
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Rejects the current case unless the condition holds (the runner draws
/// a fresh input instead).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 1usize..4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..4).contains(&y));
        }

        #[test]
        fn vec_and_map_compose(v in prop::collection::vec((0u64..5, 0u64..5), 1..20)
            .prop_map(|pairs| pairs.into_iter().map(|(a, b)| a + b).collect::<Vec<_>>()))
        {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&s| s <= 8));
        }

        #[test]
        fn assume_rejects_and_retries(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn index_resolves(mut v in prop::collection::vec(0u64..10, 1..30), pick in any::<prop::sample::Index>()) {
            let i = pick.index(v.len());
            prop_assert!(i < v.len());
            v.sort_unstable();
            prop_assert!(v[i] < 10);
        }
    }
}
