//! Offline, API-compatible subset of `crossbeam`: scoped threads
//! implemented on `std::thread::scope` (stable since Rust 1.63), and
//! unbounded MPSC channels implemented on `std::sync::mpsc`.
//!
//! Only the call shapes the workspace uses are supported:
//!
//! ```
//! let results: Vec<u64> = crossbeam::thread::scope(|s| {
//!     let handles: Vec<_> = (0..4).map(|i| s.spawn(move |_| i * 2)).collect();
//!     handles.into_iter().map(|h| h.join().unwrap()).collect()
//! })
//! .unwrap();
//! assert_eq!(results, vec![0, 2, 4, 6]);
//!
//! let (tx, rx) = crossbeam::channel::unbounded();
//! tx.send(7).unwrap();
//! assert_eq!(rx.recv(), Ok(7));
//! ```

#![forbid(unsafe_code)]

/// Unbounded MPSC channels (see [`channel::unbounded`]).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of an unbounded channel. Clonable; sends never
    /// block.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message; errs (returning the message) once the
        /// receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg)
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; errs once every sender is
        /// gone and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Blocks for at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        /// Iterates over received messages, blocking between them, until
        /// every sender is gone.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    /// Creates an unbounded channel.
    ///
    /// Unlike real crossbeam the receiver is single-consumer (`!Sync`,
    /// no `Clone`) — every consumer in the workspace is a single
    /// scheduler or writer thread that the receiver moves into.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

/// Scoped threads (see [`thread::scope`]).
pub mod thread {
    use std::any::Any;
    use std::thread as std_thread;

    /// Error payload of a panicked scoped thread.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A scope handle passed to the [`scope`] closure; spawn borrowing
    /// threads through it.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result (or the
        /// panic payload).
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a placeholder
        /// argument so crossbeam-style `|_| ...` closures compile
        /// unchanged (crossbeam passes a nested scope there; none of our
        /// call sites use it).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&())),
            }
        }
    }

    /// Creates a scope for spawning borrowing threads; all threads are
    /// joined before it returns. Always `Ok` — a panicked child that was
    /// joined surfaces through its handle, and an unjoined panicked child
    /// propagates its panic (matching std scope semantics, which is what
    /// every caller's `.unwrap()`/`.expect()` assumes anyway).
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_roundtrip_and_disconnect() {
        let (tx, rx) = crate::channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1u32).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert!(rx.try_recv().is_err()); // empty
        drop(tx);
        drop(tx2);
        assert!(rx.recv().is_err()); // disconnected
    }

    #[test]
    fn channel_recv_timeout_elapses() {
        let (tx, rx) = crate::channel::unbounded::<u8>();
        let err = rx
            .recv_timeout(std::time::Duration::from_millis(5))
            .unwrap_err();
        assert_eq!(err, crate::channel::RecvTimeoutError::Timeout);
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(5)), Ok(9));
    }

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let sum: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker")).sum()
        })
        .unwrap();
        assert_eq!(sum, 10);
    }
}
