//! Offline, API-compatible subset of `crossbeam`'s scoped threads,
//! implemented on `std::thread::scope` (stable since Rust 1.63).
//!
//! Only the call shape the workspace uses is supported:
//!
//! ```
//! let results: Vec<u64> = crossbeam::thread::scope(|s| {
//!     let handles: Vec<_> = (0..4).map(|i| s.spawn(move |_| i * 2)).collect();
//!     handles.into_iter().map(|h| h.join().unwrap()).collect()
//! })
//! .unwrap();
//! assert_eq!(results, vec![0, 2, 4, 6]);
//! ```

#![forbid(unsafe_code)]

/// Scoped threads (see [`thread::scope`]).
pub mod thread {
    use std::any::Any;
    use std::thread as std_thread;

    /// Error payload of a panicked scoped thread.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A scope handle passed to the [`scope`] closure; spawn borrowing
    /// threads through it.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result (or the
        /// panic payload).
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a placeholder
        /// argument so crossbeam-style `|_| ...` closures compile
        /// unchanged (crossbeam passes a nested scope there; none of our
        /// call sites use it).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&())),
            }
        }
    }

    /// Creates a scope for spawning borrowing threads; all threads are
    /// joined before it returns. Always `Ok` — a panicked child that was
    /// joined surfaces through its handle, and an unjoined panicked child
    /// propagates its panic (matching std scope semantics, which is what
    /// every caller's `.unwrap()`/`.expect()` assumes anyway).
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let sum: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker")).sum()
        })
        .unwrap();
        assert_eq!(sum, 10);
    }
}
