//! Offline, API-compatible subset of `parking_lot`, backed by
//! `std::sync`. Poisoning is ignored (a panic while holding the lock
//! propagates the panic, as parking_lot does), so the guards have the
//! same no-`Result` API shape.

#![forbid(unsafe_code)]

use std::sync;

/// Reader-writer lock with parking_lot's panic-free guard API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

/// Shared read guard (see [`RwLock::read`]).
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard (see [`RwLock::write`]).
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates the lock.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutex with parking_lot's panic-free guard API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// Mutex guard (see [`Mutex::lock`]).
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates the mutex.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the mutex.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }
}
