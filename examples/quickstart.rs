//! Quickstart: build a HINT^m index, run range / stabbing / count /
//! exists / first-k queries, batch queries over sealed storage, and
//! handle updates through the hybrid index.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use hint_suite::hint_core::{
    FirstK, Hint, HybridHint, Interval, IntervalIndex, QuerySink, RangeQuery,
};

fn main() {
    // --- 1. model your records as (id, start, end) triples -------------
    let data = vec![
        Interval::new(1, 10, 25), // e.g. a booking from t=10 to t=25
        Interval::new(2, 20, 40),
        Interval::new(3, 50, 60),
        Interval::new(4, 5, 90), // one long-running record
    ];

    // --- 2. build the read-optimized index ------------------------------
    // `m` controls the hierarchy depth: 2^m bottom partitions. The §3.3
    // cost model (hint_core::m_opt) can pick this for you; 10 is a fine
    // default for small domains.
    let index = Hint::build(&data, 10);

    // --- 3. range query: everything overlapping [22, 55] ----------------
    let mut results = Vec::new();
    index.query(RangeQuery::new(22, 55), &mut results);
    results.sort_unstable();
    println!("overlapping [22, 55]: {results:?}"); // [1, 2, 3, 4]
    assert_eq!(results, vec![1, 2, 3, 4]);

    // --- 4. stabbing query: who is active at t = 15? --------------------
    results.clear();
    index.stab(15, &mut results);
    results.sort_unstable();
    println!("active at t=15:       {results:?}"); // [1, 4]
    assert_eq!(results, vec![1, 4]);

    // --- 5. count / exists: no result vector is ever materialized -------
    // These run the same partition scan but emit into a CountSink /
    // ExistsSink; `exists` additionally stops at the first hit.
    println!(
        "count [22, 55]:       {}",
        index.count(RangeQuery::new(22, 55))
    ); // 4
    assert_eq!(index.count(RangeQuery::new(22, 55)), 4);
    assert!(index.exists(RangeQuery::new(12, 12)));
    assert!(!index.exists(RangeQuery::new(95, 99)));

    // --- 6. first-k: LIMIT-style queries terminate the scan early -------
    let mut first = FirstK::new(2);
    index.query_sink(RangeQuery::new(0, 100), &mut first);
    println!("first 2 of [0, 100]:  {:?}", first.ids());
    assert_eq!(first.len(), 2);

    // --- 7. seal + query_batch: freeze into the columnar (CSR) layout
    // and answer many queries with one shared level walk. Each sink
    // receives exactly what a solo `query_sink` call would emit.
    let mut index = index;
    index.seal();
    let queries = [RangeQuery::new(0, 15), RangeQuery::new(45, 58)];
    let (mut q0, mut q1) = (Vec::new(), Vec::new());
    {
        let mut sinks: Vec<&mut dyn QuerySink> = vec![&mut q0, &mut q1];
        index.query_batch(&queries, &mut sinks);
    }
    q0.sort_unstable();
    q1.sort_unstable();
    println!("batched [0,15]:       {q0:?}"); // [1, 4]
    println!("batched [45,58]:      {q1:?}"); // [3, 4]
    assert_eq!((q0, q1), (vec![1, 4], vec![3, 4]));

    // --- 8. updates: use the hybrid main+delta index (§4.4) -------------
    let mut live = HybridHint::new(&data, 0, 1_000, 10);
    live.insert(Interval::new(5, 70, 80));
    live.delete(&Interval::new(2, 20, 40));
    results.clear();
    live.query(RangeQuery::new(0, 100), &mut results);
    results.sort_unstable();
    println!("after insert+delete:  {results:?}"); // [1, 3, 4, 5]
    assert_eq!(results, vec![1, 3, 4, 5]);

    println!("quickstart OK");
}
