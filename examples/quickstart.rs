//! Quickstart: build a HINT^m index, run range / stabbing / count /
//! exists / first-k queries, batch queries over sealed storage, and
//! handle updates through the hybrid index.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use hint_suite::hint_core::{
    FirstK, Hint, HybridHint, Interval, IntervalIndex, QuerySink, RangeQuery,
};

fn main() {
    // --- 1. model your records as (id, start, end) triples -------------
    let data = vec![
        Interval::new(1, 10, 25), // e.g. a booking from t=10 to t=25
        Interval::new(2, 20, 40),
        Interval::new(3, 50, 60),
        Interval::new(4, 5, 90), // one long-running record
    ];

    // --- 2. build the read-optimized index ------------------------------
    // `m` controls the hierarchy depth: 2^m bottom partitions. The §3.3
    // cost model (hint_core::m_opt) can pick this for you; 10 is a fine
    // default for small domains.
    let index = Hint::build(&data, 10);

    // --- 3. range query: everything overlapping [22, 55] ----------------
    let mut results = Vec::new();
    index.query(RangeQuery::new(22, 55), &mut results);
    results.sort_unstable();
    println!("overlapping [22, 55]: {results:?}"); // [1, 2, 3, 4]
    assert_eq!(results, vec![1, 2, 3, 4]);

    // --- 4. stabbing query: who is active at t = 15? --------------------
    results.clear();
    index.stab(15, &mut results);
    results.sort_unstable();
    println!("active at t=15:       {results:?}"); // [1, 4]
    assert_eq!(results, vec![1, 4]);

    // --- 5. count / exists: no result vector is ever materialized -------
    // These run the same partition scan but emit into a CountSink /
    // ExistsSink; `exists` additionally stops at the first hit.
    println!(
        "count [22, 55]:       {}",
        index.count(RangeQuery::new(22, 55))
    ); // 4
    assert_eq!(index.count(RangeQuery::new(22, 55)), 4);
    assert!(index.exists(RangeQuery::new(12, 12)));
    assert!(!index.exists(RangeQuery::new(95, 99)));

    // --- 6. first-k: LIMIT-style queries terminate the scan early -------
    let mut first = FirstK::new(2);
    index.query_sink(RangeQuery::new(0, 100), &mut first);
    println!("first 2 of [0, 100]:  {:?}", first.ids());
    assert_eq!(first.len(), 2);

    // --- 7. seal + query_batch: freeze into the columnar (CSR) layout
    // and answer many queries with one shared level walk. Each sink
    // receives exactly what a solo `query_sink` call would emit.
    let mut index = index;
    index.seal();
    let queries = [RangeQuery::new(0, 15), RangeQuery::new(45, 58)];
    let (mut q0, mut q1) = (Vec::new(), Vec::new());
    {
        let mut sinks: Vec<&mut dyn QuerySink> = vec![&mut q0, &mut q1];
        index.query_batch(&queries, &mut sinks);
    }
    q0.sort_unstable();
    q1.sort_unstable();
    println!("batched [0,15]:       {q0:?}"); // [1, 4]
    println!("batched [45,58]:      {q1:?}"); // [3, 4]
    assert_eq!((q0, q1), (vec![1, 4], vec![3, 4]));

    // --- 8. updates: use the hybrid main+delta index (§4.4) -------------
    let mut live = HybridHint::new(&data, 0, 1_000, 10);
    live.insert(Interval::new(5, 70, 80));
    live.delete(&Interval::new(2, 20, 40));
    results.clear();
    live.query(RangeQuery::new(0, 100), &mut results);
    results.sort_unstable();
    println!("after insert+delete:  {results:?}"); // [1, 3, 4, 5]
    assert_eq!(results, vec![1, 3, 4, 5]);

    // --- 9. serving: put the index behind the wire protocol -------------
    // A `Server` owns a sharded engine (`Session`) and batches queries
    // across client connections; clients speak the length-prefixed
    // binary protocol over TCP or in-memory pipes (see docs/protocol.md
    // and examples/serve_client.rs for the TCP variant).
    use hint_suite::hint_core::{Domain, HintMSubs, Session, ShardedIndex, SubsConfig};
    let sharded = ShardedIndex::build_with_domain(&data, 0, 1_000, 2, |slice, lo, hi| {
        HintMSubs::build_with_domain(slice, Domain::new(lo, hi, 6), SubsConfig::full())
    });
    let server = serve::Server::start(Session::new(sharded), serve::ServeConfig::default())
        .expect("start server");
    let (client_end, server_end) = serve::duplex();
    server.attach(server_end);
    let mut client = serve::Client::new(client_end).expect("split transport");
    let mut served = client.query(RangeQuery::new(22, 55)).unwrap();
    served.sort_unstable();
    println!("served [22, 55]:      {served:?}"); // same as step 3
    assert_eq!(served, vec![1, 2, 3, 4]);
    client.insert(Interval::new(9, 30, 35)).unwrap(); // acked write
    assert!(client.seal().unwrap());
    // stream the reply chunk-by-chunk through a SliceSink — no
    // full-result Vec on the client either
    let mut streamed = Vec::new();
    let mut chunks = 0usize;
    {
        use hint_suite::hint_core::SliceSink;
        let mut sink = SliceSink::new(|ids: &[u64]| {
            chunks += 1;
            streamed.extend_from_slice(ids);
        });
        client
            .query_sink(RangeQuery::new(31, 32), &mut sink)
            .unwrap();
    }
    streamed.sort_unstable();
    assert_eq!(streamed, vec![2, 4, 9]); // the acked insert is visible
    println!("streamed [31, 32]:    {streamed:?} in {chunks} chunk(s)");
    drop(client);
    server.shutdown();

    // --- 10. pinned shard workers + serve-time m re-tuning --------------
    // A `Session` moves every shard into a persistent worker thread (a
    // `ShardPool`): batches are dispatched over channels with zero
    // per-batch thread spawns, and with HINT_SHARD_PIN=1 each worker
    // pins itself to a core so a shard's sealed arenas stay hot in one
    // cache. The session also records the query-extent mix each shard
    // actually serves; under HINT_SERVE_RETUNE=seal (or `idle`, which
    // additionally reseals between batches when the server goes quiet),
    // a dirty shard is resealed at the m the §3.3 cost model picks for
    // that observed mix — see docs/tuning.md.
    use hint_suite::hint_core::RetunePolicy;
    let sharded = ShardedIndex::build_with_domain(&data, 0, 1_000, 2, |slice, lo, hi| {
        HintMSubs::build_with_domain(slice, Domain::new(lo, hi, 4), SubsConfig::full())
    });
    let mut session = Session::with_retune(sharded, RetunePolicy::OnSeal);
    // a stab-heavy mix: the coarse m = 4 hierarchy is mis-tuned for it
    for t in 0..32 {
        let mut sink = Vec::new();
        session.query_sink(RangeQuery::stab(t * 31), &mut sink);
    }
    session.try_insert(Interval::new(10, 400, 500)).unwrap(); // dirty shard 0
    session.seal_if_dirty(); // reseal re-tunes the dirty shard
    for ev in session.retunes() {
        println!("retuned shard {}: m {} -> {}", ev.shard, ev.from, ev.to);
    }
    assert!(session.pool().exists(RangeQuery::new(420, 430))); // results unchanged
    println!("pool dispatch stats:  {:?}", session.pool().stats());

    // --- 11. durable snapshot + restore ---------------------------------
    // `snapshot` seals if dirty, then writes the columnar arenas as a
    // checksummed file via temp file + fsync + atomic rename — a crash
    // at any byte leaves the old snapshot or the new one, never
    // garbage. `restore` bulk-loads the file back (no re-sort, no
    // re-assignment) and fails with a typed error on any corruption.
    // Over the wire, `Client::snapshot_fetch` streams the same bytes so
    // a fresh peer can bootstrap from a live server (docs/protocol.md).
    let path = std::env::temp_dir().join(format!("hint-quickstart-{}.snap", std::process::id()));
    let written = session.snapshot(&path).expect("snapshot save");
    let restored = Session::restore(&path).expect("snapshot restore");
    assert_eq!(restored.len(), session.len());
    assert!(restored.pool().exists(RangeQuery::new(420, 430)));
    println!(
        "snapshot:             {written} bytes, restored {} intervals",
        restored.len()
    );
    std::fs::remove_file(&path).ok();

    // --- 12. epoch-published read replicas ------------------------------
    // HINT_READ_REPLICAS=N (or `ShardPool::with_read_replicas`) gives
    // every shard N epoch-published read replicas: each acknowledged
    // write republishes the shard before the ack, and reads pin the
    // current epoch and walk it without touching the worker's dispatch
    // channel. With spare cores the replicas get dedicated reader
    // threads; on a single core reads run caller-inline on the pinned
    // epoch — zero channel hops either way. See docs/tuning.md.
    use hint_suite::hint_core::ShardPool;
    let sharded = ShardedIndex::build_with_domain(&data, 0, 1_000, 2, |slice, lo, hi| {
        HintMSubs::build_with_domain(slice, Domain::new(lo, hi, 6), SubsConfig::full())
    });
    let pool = ShardPool::with_read_replicas(sharded, 4);
    let mut replicated = Vec::new();
    pool.query_sink(RangeQuery::new(22, 55), &mut replicated);
    replicated.sort_unstable();
    assert_eq!(replicated, vec![1, 2, 3, 4]); // same as step 3, off an epoch pin
    let stats = pool.stats();
    assert_eq!(stats.replicas, 4);
    assert!(stats.epoch_reads + stats.replica_dispatched > 0);
    println!(
        "replicated [22, 55]:  {replicated:?} ({} replicas/shard)",
        stats.replicas
    );

    // --- 13. named indexes and a served join ----------------------------
    // The server hosts a catalog of named indexes; every verb can
    // address one explicitly (`*_on`), and `Join` runs server-side
    // between two of them, streaming (outer, inner) id pairs. Writes
    // barrier only their own index (see docs/protocol.md).
    let sharded = ShardedIndex::build_with_domain(&data, 0, 1_000, 2, |slice, lo, hi| {
        HintMSubs::build_with_domain(slice, Domain::new(lo, hi, 6), SubsConfig::full())
    });
    let server = serve::Server::start(Session::new(sharded), serve::ServeConfig::default())
        .expect("start server");
    let (client_end, server_end) = serve::duplex();
    server.attach(server_end);
    let mut client = serve::Client::new(client_end).expect("split transport");
    let trips = client.create_index("trips", 0, 1_000).unwrap();
    let zones = client.create_index("zones", 0, 1_000).unwrap();
    client
        .insert_on(Some(trips), Interval::new(1, 10, 40))
        .unwrap();
    client
        .insert_on(Some(trips), Interval::new(2, 35, 90))
        .unwrap();
    client
        .insert_on(Some(zones), Interval::new(7, 30, 50))
        .unwrap();
    // Allen-relation query against a named index, evaluated server-side
    use hint_suite::hint_core::AllenRelation;
    let overlaps = client
        .allen_on(
            Some(trips),
            AllenRelation::Overlaps,
            RangeQuery::new(35, 95),
        )
        .unwrap();
    assert_eq!(overlaps, vec![1]); // [10, 40] strictly overlaps [35, 95]
                                   // server-side streamed join: trips ⋈ zones inside a window
    let pairs = client
        .join_on(Some(trips), zones, RangeQuery::new(0, 100))
        .unwrap();
    assert_eq!(pairs, vec![(1, 7), (2, 7)]); // both trips meet zone 7
    for info in client.list_indexes().unwrap() {
        println!("index {} {:?}: {} live", info.id, info.name, info.len);
    }
    server.shutdown();

    // --- 14. latency engineering: adaptive window, QoS lanes, admission -
    // By default the scheduler's batch window is adaptive (a bounded
    // AIMD controller replaces the static HINT_SERVE_MAX_BATCH /
    // HINT_SERVE_MAX_DELAY_US dial), bounded verbs and FLAG_PRIORITY
    // requests ride a high-QoS lane, and per-connection + global
    // admission budgets shed overload with a recoverable `Overloaded`
    // instead of queueing without bound — see docs/tuning.md and
    // docs/protocol.md. `Client::query_priority` sets the bit; results
    // are bit-identical to plain `query`, only the scheduling differs.
    let sharded = ShardedIndex::build_with_domain(&data, 0, 1_000, 2, |slice, lo, hi| {
        HintMSubs::build_with_domain(slice, Domain::new(lo, hi, 6), SubsConfig::full())
    });
    let server = serve::Server::start(Session::new(sharded), serve::ServeConfig::default())
        .expect("start server");
    let (client_end, server_end) = serve::duplex();
    server.attach(server_end);
    let mut client = serve::Client::new(client_end).expect("split transport");
    let mut urgent = client
        .query_priority(None, RangeQuery::new(22, 55))
        .unwrap();
    urgent.sort_unstable();
    assert_eq!(urgent, vec![1, 2, 3, 4]); // same answer, high lane
    println!("priority [22, 55]:    {urgent:?}");
    server.shutdown();
    // measure it: the open-loop load harness sweeps offered load at
    // 0.25x/0.6x/1.5x of measured capacity across static windows and
    // the adaptive controller, reporting p50/p99/p999 and shed rate:
    //
    //   cargo run -p bench --release --bin harness -- latency --quick
    //
    // (full mode drops --quick; results land in BENCH_latency.json)

    println!("quickstart OK");
}
