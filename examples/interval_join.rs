//! Interval overlap join: "which taxi trips overlapped which road-closure
//! windows?" — an index-nested-loop join over HINT^m vs the classic
//! plane-sweep join.
//!
//! ```text
//! cargo run --example interval_join --release
//! ```

use hint_suite::hint_core::{index_join_count, sweep_join_count, Hint, Interval};
use hint_suite::workloads::realistic::{RealDataset, RealisticConfig};
use hint_suite::workloads::synthetic::SyntheticConfig;
use std::time::Instant;

fn main() {
    // inner side: a TAXIS-shaped trip table
    let trips_cfg = RealisticConfig::new(RealDataset::Taxis).with_scale(1024);
    let trips = trips_cfg.generate();
    let domain = trips_cfg.domain();

    // outer side: a few thousand closure windows over the same domain
    let closures: Vec<Interval> = SyntheticConfig {
        domain,
        cardinality: 4_000,
        alpha: 1.1,
        sigma: domain as f64 / 4.0,
        seed: 99,
    }
    .generate()
    .into_iter()
    .map(|s| Interval::new(s.id + 10_000_000, s.st, s.end))
    .collect();

    println!(
        "trips: {}, closure windows: {}, domain: {}",
        trips.len(),
        closures.len(),
        domain
    );

    // index-nested-loop join over HINT^m
    let t0 = Instant::now();
    let index = Hint::build(&trips, 14);
    let build = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let pairs_inl = index_join_count(&index, &closures);
    let probe = t0.elapsed().as_secs_f64();
    println!("index join:  build {build:.3}s + probe {probe:.3}s -> {pairs_inl} pairs");

    // plane-sweep baseline
    let t0 = Instant::now();
    let pairs_sweep = sweep_join_count(&closures, &trips);
    let sweep = t0.elapsed().as_secs_f64();
    println!("sweep join:  {sweep:.3}s -> {pairs_sweep} pairs");

    assert_eq!(pairs_inl, pairs_sweep, "join algorithms must agree");
    println!(
        "\nthe index join amortizes: once built, each new closure batch costs only the probe\n\
         ({:.1}x the sweep per batch here, without re-sorting the {}-row trip table)",
        probe / sweep.max(1e-9),
        trips.len()
    );
    println!("interval_join OK");
}
