//! Sharded serving: a `ShardedIndex` front-end over sealed HINT^m
//! shards, answering query batches through the parallel executor while
//! writes keep routing to their owning shards.
//!
//! ```text
//! cargo run --example sharded_serving --release
//! ```

use hint_suite::hint_core::{
    CountSink, Domain, FirstK, HintMSubs, Interval, IntervalIndex, RangeQuery, ShardedIndex,
    SubsConfig,
};
use hint_suite::workloads::realistic::{RealDataset, RealisticConfig};
use std::time::Instant;

fn main() {
    let cfg = RealisticConfig::new(RealDataset::Taxis).with_scale(16);
    let data = cfg.generate();
    let domain = cfg.domain();
    println!("dataset: {} intervals, domain {domain}", data.len());

    // split the domain into 4 contiguous shards, one sealed HINT^m each
    let shards = 4;
    let t0 = Instant::now();
    let mut index =
        ShardedIndex::build_with_domain(&data, 0, domain - 1, shards, |slice, lo, hi| {
            HintMSubs::build_with_domain(slice, Domain::new(lo, hi, 12), SubsConfig::full())
        });
    index.seal();
    println!(
        "built + sealed {} shards in {:.3}s ({} boundary-crossing replicas)",
        index.shard_count(),
        t0.elapsed().as_secs_f64(),
        index.replicated(),
    );
    for (i, ((lo, hi), n)) in index
        .shard_bounds()
        .into_iter()
        .zip(index.shard_lens())
        .enumerate()
    {
        println!("  shard {i}: [{lo:>8}, {hi:>8}]  {n} entries");
    }

    // a batch of mixed-extent queries, answered in one parallel fan-out
    let queries: Vec<RangeQuery> = (0..256u64)
        .map(|i| {
            let st = (i * 7_919) % (domain - 1);
            RangeQuery::new(st, (st + 1 + (i % 40) * domain / 2_000).min(domain - 1))
        })
        .collect();

    // enumerate into one Vec sink per query
    let mut results: Vec<Vec<u64>> = queries.iter().map(|_| Vec::new()).collect();
    let t0 = Instant::now();
    index.query_batch_merge(&queries, &mut results);
    let total: usize = results.iter().map(Vec::len).sum();
    println!(
        "\nbatch of {} queries -> {} results in {:.2}ms",
        queries.len(),
        total,
        t0.elapsed().as_secs_f64() * 1e3,
    );

    // counting needs no result memory at all
    let mut counts = vec![CountSink::new(); queries.len()];
    index.query_batch_merge(&queries, &mut counts);
    let counted: usize = counts.iter().map(CountSink::count).sum();
    assert_eq!(counted, total);
    println!("count-only batch agrees: {counted} results");

    // first-k answers saturate each shard-local scan early and never
    // over-emit across the merge boundary
    let k = 5;
    let mut tops: Vec<FirstK> = queries.iter().map(|_| FirstK::new(k)).collect();
    index.query_batch_merge(&queries, &mut tops);
    assert!(tops.iter().all(|s| s.len() <= k));
    println!("first-{k} batch: every sink capped at {k}");

    // writes route to owning shards; a reseal folds them into the arenas
    let fresh_id = data.len() as u64; // ids must stay unique across the index
    let burst: Vec<Interval> = (0..10_000u64)
        .map(|i| {
            let st = (i * 104_729) % (domain - 1);
            Interval::new(fresh_id + i, st, (st + i % 512).min(domain - 1))
        })
        .collect();
    let t0 = Instant::now();
    for &s in &burst {
        index.insert(s);
    }
    let insert_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    index.seal();
    println!(
        "ingested {} intervals in {:.3}s, resealed in {:.3}s; live = {}",
        burst.len(),
        insert_s,
        t0.elapsed().as_secs_f64(),
        index.len(),
    );
    let q = RangeQuery::new(0, domain - 1);
    let full = index.count(q);
    assert_eq!(
        full,
        index.len(),
        "full-domain count must see every interval"
    );
    println!("full-domain count after ingest: {full}");
}
