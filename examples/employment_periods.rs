//! Temporal-database scenario from the paper's introduction:
//!
//! > on a relation storing employment periods: *find the employees who
//! > were employed sometime in [1/1/2021, 2/28/2021]*.
//!
//! Demonstrates range queries, Allen-relation selections (§6 extension)
//! and duration-constrained queries on an employment-history table.
//!
//! ```text
//! cargo run --example employment_periods --release
//! ```

use hint_suite::hint_core::{AllenIndex, AllenRelation, Interval, RangeQuery};

/// Days since 2020-01-01 (toy calendar: 30-day months).
fn day(year: u64, month: u64, dayn: u64) -> u64 {
    (year - 2020) * 360 + (month - 1) * 30 + (dayn - 1)
}

fn main() {
    // employment spells: (employee id, hired, left)
    let spells = vec![
        Interval::new(101, day(2020, 1, 1), day(2020, 12, 15)), // left before 2021
        Interval::new(102, day(2020, 6, 1), day(2021, 1, 20)),  // left in Jan 2021
        Interval::new(103, day(2021, 1, 10), day(2021, 2, 10)), // short 2021 stint
        Interval::new(104, day(2020, 3, 1), day(2022, 5, 30)),  // spans the window
        Interval::new(105, day(2021, 2, 28), day(2021, 9, 1)),  // starts on window end
        Interval::new(106, day(2021, 3, 5), day(2021, 8, 1)),   // starts after window
    ];
    let index = AllenIndex::build(&spells, 12);

    let window = RangeQuery::new(day(2021, 1, 1), day(2021, 2, 28));

    // who was employed sometime in Jan-Feb 2021?
    let mut employed = Vec::new();
    index.range(window, &mut employed);
    employed.sort_unstable();
    println!("employed in [2021-01-01, 2021-02-28]: {employed:?}");
    assert_eq!(employed, vec![102, 103, 104, 105]);

    // who was employed for the WHOLE window? (spell contains the window)
    let mut whole = Vec::new();
    index.select(AllenRelation::Contains, window, &mut whole);
    println!("employed for the whole window:        {whole:?}");
    assert_eq!(whole, vec![104]);

    // whose spell lies entirely INSIDE the window? (during)
    let mut inside = Vec::new();
    index.select(AllenRelation::During, window, &mut inside);
    println!("hired and left inside the window:     {inside:?}");
    assert_eq!(inside, vec![103]);

    // who left exactly when the window opened or overlaps from the left?
    let mut left_edge = Vec::new();
    index.select(AllenRelation::Overlaps, window, &mut left_edge);
    println!("employed across the window start:     {left_edge:?}");
    assert_eq!(left_edge, vec![102]);

    // long-tenure filter: employed in the window AND tenure >= 1 year
    let mut veterans = Vec::new();
    index.range_with_duration(window, 360, u64::MAX, &mut veterans);
    veterans.sort_unstable();
    println!("window + tenure >= 1y:                {veterans:?}");
    assert_eq!(veterans, vec![104]);

    println!("employment_periods OK");
}
