//! Stream-processor scenario from the paper's introduction:
//!
//! > The internal states of window queries in stream processors (e.g.
//! > Flink/Kafka) can be modeled and managed as intervals.
//!
//! Simulates session windows arriving on a stream: each session is an
//! interval `[open, close]` ingested into the hybrid HINT^m (§4.4), while
//! watermark-driven queries ask "which sessions overlap this tumbling
//! window?" and expired sessions are evicted.
//!
//! ```text
//! cargo run --example stream_windows --release
//! ```

use hint_suite::hint_core::{HybridHint, Interval, RangeQuery};

fn main() {
    const HORIZON: u64 = 1_000_000; // event-time horizon we pre-declare
    const TUMBLE: u64 = 10_000; // tumbling window size
    const RETENTION: u64 = 50_000; // evict sessions older than this

    let mut state = HybridHint::new(&[], 0, HORIZON, 12).with_merge_threshold(4_096);

    // deterministic pseudo-random session generator
    let mut x = 0x243f6a8885a308d3u64;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };

    let mut session_id = 0u64;
    let mut open_sessions: Vec<Interval> = Vec::new();
    let mut evicted = 0usize;
    let mut reported = 0usize;

    for window_no in 0..40u64 {
        let wm = window_no * TUMBLE; // watermark advances per tick
                                     // ~200 new sessions per tick, lengths up to 30k (crossing windows)
        for _ in 0..200 {
            let st = wm + next() % TUMBLE;
            let len = next() % 30_000;
            let s = Interval::new(session_id, st, (st + len).min(HORIZON - 1));
            session_id += 1;
            state.insert(s);
            open_sessions.push(s);
        }
        // fire the tumbling window query at the watermark
        let q = RangeQuery::new(wm, wm + TUMBLE - 1);
        let mut hits = Vec::new();
        state.query(q, &mut hits);
        reported += hits.len();
        if window_no % 8 == 0 {
            println!(
                "watermark {wm:>7}: {:>5} sessions overlap window [{}, {}]",
                hits.len(),
                q.st,
                q.end
            );
        }
        // evict sessions that closed long before the watermark
        let horizon = wm.saturating_sub(RETENTION);
        open_sessions.retain(|s| {
            if s.end < horizon {
                assert!(state.delete(s), "session {} must be evictable", s.id);
                evicted += 1;
                false
            } else {
                true
            }
        });
    }

    println!(
        "\ningested {session_id} sessions, evicted {evicted}, reported {reported} window hits"
    );
    println!(
        "live state: {} sessions ({} in delta)",
        state.len(),
        state.delta_len()
    );
    assert_eq!(state.len(), session_id as usize - evicted);
    println!("stream_windows OK");
}
