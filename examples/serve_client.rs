//! Serving over real sockets: a TCP loopback server over a sharded,
//! sealed HINT^m, driven by concurrent clients issuing interleaved
//! queries and writes — and checked against a directly-queried twin.
//!
//! ```text
//! cargo run --example serve_client --release
//! ```

use hint_suite::hint_core::{
    Domain, HintMSubs, Interval, RangeQuery, ScanOracle, Session, ShardedIndex, SubsConfig,
};
use serve::{Client, ServeConfig, Server};
use std::net::{TcpListener, TcpStream};

fn main() {
    // a modest dataset so the example runs in milliseconds
    let dom = 1 << 16;
    let data: Vec<Interval> = (0..20_000u64)
        .map(|i| {
            let st = (i * 211) % (dom - 600);
            Interval::new(i, st, st + 1 + i % 600)
        })
        .collect();
    let twin = ScanOracle::new(&data);

    // engine: 4 contiguous domain shards, sealed columnar layout
    let index = ShardedIndex::build_with_domain(&data, 0, dom - 1, 4, |slice, lo, hi| {
        HintMSubs::build_with_domain(slice, Domain::new(lo, hi, 10), SubsConfig::full())
    });
    // batching knobs come from the environment when set
    // (HINT_SERVE_MAX_BATCH / HINT_SERVE_MAX_DELAY_US; garbled values
    // warn and fall back), else the defaults
    let mut server = Server::start(Session::new(index), ServeConfig::from_env()).expect("start");

    // TCP loopback on an OS-assigned port
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = server.listen_tcp(listener).expect("listen");
    println!("serving on {addr}");

    // phase 1: concurrent clients, read-only traffic, checked per query
    let queries_per_client = 64u64;
    std::thread::scope(|scope| {
        for c in 0..4u64 {
            let twin = &twin;
            scope.spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut client = Client::new(stream).expect("split stream");
                for i in 0..queries_per_client {
                    let st = (c * 17_000 + i * 997) % (dom - 2_000);
                    let q = RangeQuery::new(st, st + 1_500);
                    let mut got = client.query(q).expect("query");
                    got.sort_unstable();
                    assert_eq!(got, twin.query_sorted(q), "client {c} on {q:?}");
                }
            });
        }
    });
    println!("phase 1: 4 clients x {queries_per_client} queries matched the direct index");

    // phase 2: one writer interleaves inserts/deletes/seal with queries
    let stream = TcpStream::connect(addr).expect("connect writer");
    let mut client = Client::new(stream).expect("split stream");
    let mut twin = twin;
    for i in 0..200u64 {
        let st = (i * 313) % (dom - 100);
        let s = Interval::new(1_000_000 + i, st, st + 80);
        client.insert(s).expect("insert");
        twin.insert(s);
        if i % 3 == 0 {
            let q = RangeQuery::new(st, st + 80);
            let mut got = client.query(q).expect("query after insert");
            got.sort_unstable();
            assert_eq!(got, twin.query_sorted(q), "write {i}");
        }
        if i % 7 == 0 {
            assert!(client.delete(s).expect("delete"));
            assert!(twin.delete(s.id));
        }
    }
    assert!(client.seal().expect("seal"), "dirty index must reseal");
    let q = RangeQuery::new(0, dom - 1);
    let mut got = client.query(q).expect("full sweep");
    got.sort_unstable();
    assert_eq!(got, twin.query_sorted(q), "post-seal full sweep");
    println!(
        "phase 2: 200 writes + seal; full-domain sweep matches ({} live)",
        got.len()
    );

    let stats = server.stats();
    println!(
        "scheduler: {} batches / {} queries (mean batch {:.1}, largest {}), {} writes",
        stats.batches,
        stats.queries,
        stats.mean_batch(),
        stats.largest_batch,
        stats.writes,
    );
    server.shutdown();
    println!("serve_client OK");
}
