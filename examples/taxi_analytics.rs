//! Taxi-trip analytics from the paper's introduction:
//!
//! > on taxi trips data: *find the taxis which were active (on a trip)
//! > between 15:00 and 17:00 on 3/3/2021*.
//!
//! Builds a TAXIS-shaped clone (§5.1 / Table 4), compares HINT^m against
//! a 1D-grid on rush-hour window queries, and prints a small
//! activity-by-hour report.
//!
//! ```text
//! cargo run --example taxi_analytics --release
//! ```

use hint_suite::grid1d::Grid1D;
use hint_suite::hint_core::{Hint, RangeQuery};
use hint_suite::workloads::realistic::{RealDataset, RealisticConfig};
use std::time::Instant;

fn main() {
    // a TAXIS-like workload: hundreds of thousands of short trips
    let cfg = RealisticConfig::new(RealDataset::Taxis).with_scale(512);
    let trips = cfg.generate();
    let domain = cfg.domain();
    println!(
        "trips: {}, domain: {} seconds (~{} days)",
        trips.len(),
        domain,
        domain / 86_400
    );

    let t0 = Instant::now();
    let hint = Hint::build(&trips, 16);
    println!(
        "HINT^m built in {:.3}s ({} entries)",
        t0.elapsed().as_secs_f64(),
        hint.entries()
    );
    let t0 = Instant::now();
    let grid = Grid1D::build(&trips, 4_000);
    println!("1D-grid built in {:.3}s", t0.elapsed().as_secs_f64());

    // the scaled clone keeps the trip-length statistics but shrinks the
    // observation window; treat it as `hours` equal slices and ask:
    // "taxis active between slice 15 and slice 17 of the last day"
    let hour = (domain / 24).max(1);
    let window = RangeQuery::new(15 * hour, 17 * hour);
    let mut active = Vec::new();
    hint.query(window, &mut active);
    println!("taxis active in slices 15-17: {}", active.len());

    let mut check = Vec::new();
    grid.query(window, &mut check);
    assert_eq!(active.len(), check.len(), "indexes must agree");

    // activity at each slice boundary (stabbing queries)
    println!("\nactive trips at each of the 24 slice boundaries:");
    for h in 0..24 {
        let mut out = Vec::new();
        hint.stab(h * hour, &mut out);
        println!(
            "  slice {h:>2}  {:>6}  {}",
            out.len(),
            "#".repeat(out.len() / 20 + 1)
        );
    }

    // micro head-to-head on 2000 window queries of 2 slices each
    let wlen = 2 * hour;
    let windows: Vec<RangeQuery> = (0..2_000u64)
        .map(|i| {
            let st = (i * 104_729) % (domain - wlen);
            RangeQuery::new(st, st + wlen)
        })
        .collect();
    let mut out = Vec::new();
    let t0 = Instant::now();
    let mut total = 0usize;
    for &q in &windows {
        out.clear();
        hint.query(q, &mut out);
        total += out.len();
    }
    let hint_qps = windows.len() as f64 / t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let mut total_g = 0usize;
    for &q in &windows {
        out.clear();
        grid.query(q, &mut out);
        total_g += out.len();
    }
    let grid_qps = windows.len() as f64 / t0.elapsed().as_secs_f64();
    assert_eq!(total, total_g);
    println!("\n2-slice window queries: HINT^m {hint_qps:.0} q/s vs 1D-grid {grid_qps:.0} q/s");
    println!("taxi_analytics OK");
}
