//! Concurrent usage (§6 future work: parallelization): a shared
//! `ConcurrentHint` served to reader threads while a writer ingests new
//! intervals, plus the parallel bulk build.
//!
//! ```text
//! cargo run --example concurrent_reads --release
//! ```

use hint_suite::hint_core::{ConcurrentHint, Hint, HintOptions, Interval, RangeQuery};
use hint_suite::workloads::realistic::{RealDataset, RealisticConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

fn main() {
    let cfg = RealisticConfig::new(RealDataset::Books).with_scale(32);
    let data = cfg.generate();
    let domain = cfg.domain();
    println!("dataset: {} intervals, domain {}", data.len(), domain);

    // parallel bulk build vs serial
    let t0 = Instant::now();
    let _serial = Hint::build(&data, 12);
    let serial_s = t0.elapsed().as_secs_f64();
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let t0 = Instant::now();
    let _parallel = Hint::build_parallel(&data, 12, HintOptions::default(), threads);
    let parallel_s = t0.elapsed().as_secs_f64();
    println!("bulk build: serial {serial_s:.3}s vs parallel({threads}) {parallel_s:.3}s");

    // shared index: 4 readers + 1 writer for ~1 second
    let idx = ConcurrentHint::new(&data, 0, domain - 1, 12).with_merge_threshold(16_384);
    let queries_done = AtomicU64::new(0);
    let inserts_done = AtomicU64::new(0);
    let deadline = Instant::now() + std::time::Duration::from_millis(800);

    crossbeam::thread::scope(|s| {
        for r in 0..4u64 {
            let idx = &idx;
            let queries_done = &queries_done;
            s.spawn(move |_| {
                let mut out = Vec::new();
                let mut x = 0x9e3779b97f4a7c15u64 ^ r;
                let mut n = 0u64;
                while Instant::now() < deadline {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let st = x % (domain - domain / 1000);
                    out.clear();
                    idx.query(RangeQuery::new(st, st + domain / 1000), &mut out);
                    n += 1;
                }
                queries_done.fetch_add(n, Ordering::Relaxed);
            });
        }
        let idx = &idx;
        let inserts_done = &inserts_done;
        s.spawn(move |_| {
            let mut i = 0u64;
            while Instant::now() < deadline {
                let st = (i * 7_919) % (domain - 1_000);
                idx.insert(Interval::new(50_000_000 + i, st, st + 500));
                i += 1;
            }
            inserts_done.fetch_add(i, Ordering::Relaxed);
        });
    })
    .unwrap();

    println!(
        "0.8s mixed run: {} queries ({} q/s) alongside {} inserts",
        queries_done.load(Ordering::Relaxed),
        (queries_done.load(Ordering::Relaxed) as f64 / 0.8) as u64,
        inserts_done.load(Ordering::Relaxed),
    );
    assert_eq!(
        idx.len(),
        data.len() + inserts_done.load(Ordering::Relaxed) as usize
    );
    println!("concurrent_reads OK");
}
